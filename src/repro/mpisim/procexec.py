"""SPMD process executor: each rank is a real OS process (GIL escape).

``run_spmd(nprocs, fn, executor="process")`` runs ``fn(comm, *args)`` once
per rank like the thread executor, but each rank is a forked child with its
own interpreter, so pack/unpack and user compute run truly in parallel.

Architecture
------------

Every child builds a :class:`ProcessFabric` — a *local* ``Fabric`` whose
mailboxes hold only this rank's traffic.  Cross-rank posts travel as
pickled envelopes through one ``multiprocessing.Queue`` per rank; a daemon
drain thread in each child folds incoming envelopes back into the local
fabric (message delivery, revocation, liveness, agreement contributions),
which wakes the base class's condition variables exactly as a same-process
post would.  ``Communicator`` therefore runs unmodified on top.

Bulk payloads do **not** go through the queues: ``ProcessFabric`` sets
``supports_zerocopy = False``, so ``resolve_transport`` degrades the
zero-copy transport to ``shm`` and payloads above ``SHM_MIN_BYTES`` move
through pooled POSIX shared-memory segments (see ``repro.mpisim.shm``) —
the queue only carries a tiny :class:`~repro.mpisim.shm.ShmTicket`.

Control plane (parent side):

* result queue — each child ships one :class:`_ResultEnvelope` carrying
  its return value (or exception), its closed trace spans, and its fault
  stats; the parent merges spans into the process-wide ``TRACER`` (the
  epoch is shared — ``time.perf_counter`` is system-wide on Linux — so
  all ranks land on one timeline) and fault counters into ``FAULTS``.
* abort event + text — ``Fabric.abort`` in any child trips it; peers
  notice within one 0.25 s condition-wait tick.
* hard-death watch — a child that vanishes without an envelope (``os._exit``,
  ``SIGKILL``) is detected by the parent, which marks it dead for the
  survivors (``resilient=True``) or aborts the run with a typed
  :class:`~repro.mpisim.errors.ProcessFailedError`.
* done event — children hold their shared-memory segments (and their
  result-queue feeder) until the parent has collected every result, so a
  receiver can never attach a segment its sender already unlinked.  After
  the run the parent additionally sweeps ``/dev/shm`` by run prefix, so
  even hard-killed ranks leak nothing.

The default start method is ``fork`` (override with ``DDR_MP_START``):
children inherit ``fn``/closures/module state, so every existing
``run_spmd`` call site works unchanged.  Under ``spawn``, ``fn`` and its
arguments must be picklable.

Known semantic differences from the thread executor (see DESIGN.md):
``fabric.shared`` (the cross-rank blackboard) is process-local here —
mitigated for the resilience layer by ``blackboard_prefix``, which makes
``shared_store`` hand out the ``/dev/shm``-backed
:class:`~repro.resilience.shmstore.ShmBuddyStore` whose deposits outlive
the depositing process — and fault-plan op counters restart per child
(deterministic per rank either way).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence

from ..faults.injector import FAULTS
from ..obs.tracer import TRACER, SpanRecord
from .comm import DEFAULT_DEADLOCK_TIMEOUT, Communicator, Fabric, _Message
from .errors import AbortError, CommunicatorError, ProcessFailedError, RankCrashError
from .shm import sweep_prefix

__all__ = ["ProcessFabric", "run_spmd_processes"]

#: Envelope kinds on the per-rank inbox queues.
_ENV_MSG = "msg"
_ENV_REVOKE = "revoke"
_ENV_AGREE = "agree"
_ENV_DEAD = "dead"
_ENV_RETIRED = "retired"

_run_seq = 0
_run_seq_lock = threading.Lock()


def _next_run_prefix() -> str:
    global _run_seq
    with _run_seq_lock:
        _run_seq += 1
        return f"ddrp{os.getpid()}x{_run_seq}"


def start_method() -> str:
    """The multiprocessing start method (``DDR_MP_START``, default fork)."""
    return os.environ.get("DDR_MP_START", "fork")


@dataclass
class _ProcCfg:
    """Everything a child needs, shipped across the process boundary."""

    nprocs: int
    deadlock_timeout: float
    resilient: bool
    shm_prefix: str
    queues: list  # one inbox Queue per world rank (original + spawn reserve)
    result_queue: Any
    abort_event: Any
    abort_text: Any  # ctypes char array: repr of the aborting exception
    done_event: Any
    trace_enabled: bool
    trace_epoch: float
    spawn_slots: int = 0  # reserve queue slots for Communicator.spawn joiners
    plan: Any = None  # FaultPlan, or None
    policy: Any = None  # ReliabilityPolicy, or None


@dataclass
class _ResultEnvelope:
    """One child's final report back to the parent."""

    rank: int
    pid: int
    kind: str  # "ok" | "aborted" | "crashed" | "error"
    value: Any = None
    spans: list = field(default_factory=list)
    fault_stats: dict = field(default_factory=dict)


class ProcessFabric(Fabric):
    """A rank-local fabric bridged to its peers by queues.

    Inherits all of ``Fabric``'s matching, hazard, and agreement machinery;
    only delivery (``post``), abort visibility, and the fault-tolerance
    broadcasts are overridden to cross the process boundary.
    """

    supports_zerocopy = False  # live buffer refs cannot leave this process

    def __init__(self, cfg: _ProcCfg, my_world: int) -> None:
        # Size the local tables for every provisioned slot (original ranks
        # plus the spawn reserve) so envelopes from late joiners always
        # have a condition variable to land on.
        super().__init__(cfg.nprocs + cfg.spawn_slots, cfg.deadlock_timeout)
        self._next_world = cfg.nprocs  # reserve slots are claimed, not grown
        self.resilient = cfg.resilient
        self.cfg = cfg
        self.my_world = my_world
        self.shm_prefix = f"{cfg.shm_prefix}r{my_world}"
        self.blackboard_prefix = f"{cfg.shm_prefix}bb"
        self._drain_stop = threading.Event()
        self._drain_thread = threading.Thread(
            target=self._drain, name=f"spmd-drain-{my_world}", daemon=True
        )
        self._drain_thread.start()

    # -- cross-process delivery ---------------------------------------------

    def post(self, comm_id: Hashable, dest_world: int, message: _Message) -> None:
        if dest_world == self.my_world:
            super().post(comm_id, dest_world, message)
            return
        self.cfg.queues[dest_world].put((_ENV_MSG, comm_id, message))

    def _broadcast(self, envelope: tuple) -> None:
        for world, q in enumerate(self.cfg.queues):
            if world != self.my_world:
                try:
                    q.put(envelope)
                except Exception:
                    pass  # peer's queue torn down; it is exiting anyway

    def _drain(self) -> None:
        """Fold incoming envelopes into the local fabric (daemon thread)."""
        inbox = self.cfg.queues[self.my_world]
        while not self._drain_stop.is_set():
            try:
                envelope = inbox.get(timeout=0.25)
            except _queue.Empty:
                continue
            except (EOFError, OSError):
                return  # queue torn down at shutdown
            kind = envelope[0]
            if kind == _ENV_MSG:
                _, comm_id, message = envelope
                super().post(comm_id, self.my_world, message)
            elif kind == _ENV_AGREE:
                _, key, world, value = envelope
                super().agree_contribute(key, world, value)
            elif kind == _ENV_REVOKE:
                super().revoke(envelope[1])
            elif kind == _ENV_DEAD:
                super().mark_dead(envelope[1])
            elif kind == _ENV_RETIRED:
                super().mark_retired(envelope[1])

    def stop_drain(self) -> None:
        self._drain_stop.set()

    # -- abort (shared event + text, so peers in other processes see it) ----

    def abort(self, exc: BaseException) -> None:
        text = repr(exc).encode("utf-8", "replace")[: len(self.cfg.abort_text) - 1]
        try:
            self.cfg.abort_text.value = text
        except Exception:
            pass
        self.cfg.abort_event.set()
        super().abort(exc)

    def check_abort(self) -> None:
        if self._abort_exc is None and self.cfg.abort_event.is_set():
            text = self.cfg.abort_text.value.decode("utf-8", "replace")
            self._abort_exc = RuntimeError(text or "peer process failed")
        super().check_abort()

    # -- ULFM broadcasts -----------------------------------------------------

    def mark_dead(self, world_rank: int) -> None:
        super().mark_dead(world_rank)
        self._broadcast((_ENV_DEAD, world_rank))

    def mark_retired(self, world_rank: int) -> None:
        super().mark_retired(world_rank)
        self._broadcast((_ENV_RETIRED, world_rank))

    def revoke(self, comm_id: Hashable) -> None:
        super().revoke(comm_id)
        self._broadcast((_ENV_REVOKE, comm_id))

    def agree_contribute(self, key: Hashable, world_rank: int, value: Any) -> None:
        super().agree_contribute(key, world_rank, value)
        self._broadcast((_ENV_AGREE, key, world_rank, value))

    def agree_finish(
        self, key: Hashable, world_rank: int, members: Sequence[int]
    ) -> None:
        # This process has exactly one reader; GC the local copy right away.
        with self._state_lock:
            self._agreements.pop(key, None)

    # -- dynamic world growth (Communicator.spawn) ---------------------------

    def claim_world_slots(self, count: int) -> list[int]:
        """Claim ``count`` of the reserve queue slots provisioned at launch.

        Unlike the thread fabric this cannot grow in place: a forked joiner
        needs an inbox queue that existed before any fork, so capacity is
        fixed by ``run_spmd(..., spawn_slots=k)``.
        """
        with self._state_lock:
            start = self._next_world
            if start + count > len(self.cfg.queues):
                free = len(self.cfg.queues) - start
                raise CommunicatorError(
                    f"cannot spawn {count} rank(s): {free} reserve slot(s) "
                    f"left on the process executor — launch with "
                    f"run_spmd(..., spawn_slots=...) or DDR_SPAWN_SLOTS"
                )
            self._next_world = start + count
            return list(range(start, start + count))

    def note_world_slots(self, worlds: Sequence[int]) -> None:
        if not worlds:
            return
        with self._state_lock:
            self._next_world = max(self._next_world, max(worlds) + 1)

    def launch_rank(
        self,
        world_rank: int,
        comm_id: Hashable,
        world_ranks: Sequence[int],
        rank: int,
        lineage: Sequence[Hashable],
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        """Fork a new OS-process rank into the running world (spawn root).

        Requires the ``fork`` start method: the joiner must inherit this
        run's queues, events, and ``fn``'s closure state.
        """
        if start_method() != "fork":
            raise CommunicatorError(
                "Communicator.spawn on the process executor requires the "
                "fork start method (DDR_MP_START=fork); joiners inherit the "
                "run's queues and closures"
            )
        ctx = mp.get_context("fork")
        # SPMD children are daemonic so a dying driver reaps them, but a
        # daemonic process may not fork children of its own.  Lift the flag
        # around the fork — the joiner is governed by the run's done_event
        # protocol (and the parent's /dev/shm sweep) instead.
        proc_state = mp.current_process()._config
        was_daemon = proc_state.get("daemon", False)
        proc_state["daemon"] = False
        try:
            proc = ctx.Process(
                target=_spawned_child_main,
                args=(
                    self.cfg,
                    world_rank,
                    comm_id,
                    tuple(world_ranks),
                    rank,
                    tuple(lineage),
                    fn,
                    args,
                    kwargs,
                ),
                name=f"spmd-spawn-{world_rank}",
            )
            proc.start()
        finally:
            proc_state["daemon"] = was_daemon


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------


def _pickle_safe(envelope: _ResultEnvelope) -> _ResultEnvelope:
    """Ensure the envelope survives the result queue's feeder thread.

    An unpicklable return value (or exception) would die silently in the
    feeder and hang the parent; degrade it to a ``repr`` instead.
    """
    try:
        pickle.dumps(envelope)
        return envelope
    except Exception:
        pass
    fallback = RuntimeError(
        f"rank {envelope.rank} produced an unpicklable "
        f"{'result' if envelope.kind == 'ok' else 'exception'}: "
        f"{envelope.value!r}"
    )
    envelope.value = fallback if envelope.kind != "ok" else repr(fallback)
    if envelope.kind == "ok":
        envelope.kind = "error"
        envelope.value = fallback
    try:
        pickle.dumps(envelope)
    except Exception:
        envelope.spans = []
        envelope.fault_stats = {}
    return envelope


def _child_main(
    cfg: _ProcCfg,
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
) -> None:
    from . import shm as shm_mod
    from .executor import WORLD_ID

    # Fork hygiene: the parent's shm handle caches (and any attached
    # segments) are not ours to unlink.
    shm_mod.forget_foreign()
    TRACER.reset_for_child(cfg.trace_epoch, cfg.trace_enabled)
    TRACER.set_thread_rank(rank)
    if cfg.plan is not None:
        FAULTS.install(cfg.plan, cfg.policy)  # fresh per-child op counters
    else:
        FAULTS.clear()

    fabric = ProcessFabric(cfg, rank)
    comm = Communicator(fabric, WORLD_ID, tuple(range(cfg.nprocs)), rank)
    kind, value = "ok", None
    try:
        value = fn(comm, *args, **kwargs)
    except RankCrashError as exc:
        if cfg.resilient:
            fabric.mark_dead(rank)  # broadcasts to the survivors
            kind, value = "crashed", exc
        else:
            fabric.abort(exc)
            kind, value = "error", exc
    except BaseException as exc:  # noqa: BLE001 - must report anything
        if fabric.aborted is not None or cfg.abort_event.is_set():
            kind, value = "aborted", None  # secondary failure; first wins
        else:
            fabric.abort(exc)
            kind, value = "error", exc

    envelope = _pickle_safe(
        _ResultEnvelope(
            rank=rank,
            pid=os.getpid(),
            kind=kind,
            value=value,
            spans=TRACER.records() if cfg.trace_enabled else [],
            fault_stats=FAULTS.stats.snapshot() if cfg.plan is not None else {},
        )
    )
    cfg.result_queue.put(envelope)
    # Hold our shm segments (and this process) until the parent has every
    # result: a peer may still be unpacking out of a segment we own.
    cfg.done_event.wait(timeout=cfg.deadlock_timeout * 2 + 10)
    fabric.stop_drain()
    fabric.close_shm()
    for q in [*cfg.queues, cfg.result_queue]:
        try:
            q.cancel_join_thread()
        except Exception:
            pass


def _spawned_child_main(
    cfg: _ProcCfg,
    world_rank: int,
    comm_id: Hashable,
    world_ranks: tuple,
    rank: int,
    lineage: tuple,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
) -> None:
    """Entry point of a rank forked into a *running* world by ``spawn``.

    Mirrors ``_child_main`` with two differences: the communicator is the
    merged spawn communicator (not COMM_WORLD), and no result envelope is
    shipped — spawned ranks have no slot in the driver's result list, so a
    clean return retires the rank in the liveness table and a failure
    aborts the run (resilient ``RankCrashError`` aside), exactly like the
    thread fabric's ``launch_rank``.
    """
    from . import shm as shm_mod

    shm_mod.forget_foreign()
    TRACER.reset_for_child(cfg.trace_epoch, cfg.trace_enabled)
    TRACER.set_thread_rank(world_rank)
    if cfg.plan is not None:
        FAULTS.install(cfg.plan, cfg.policy)
    else:
        FAULTS.clear()

    fabric = ProcessFabric(cfg, world_rank)
    fabric.note_world_slots(world_ranks)  # slot allocator in lockstep with root
    comm = Communicator(fabric, comm_id, world_ranks, rank, lineage=lineage)
    try:
        fn(comm, *args, **kwargs)
    except AbortError:
        pass
    except RankCrashError as exc:
        if cfg.resilient:
            fabric.mark_dead(world_rank)
        else:
            fabric.abort(exc)
    except BaseException as exc:  # noqa: BLE001 - must surface anything
        if fabric.aborted is None and not cfg.abort_event.is_set():
            fabric.abort(exc)
    else:
        fabric.mark_retired(world_rank)
    # Same shutdown discipline as _child_main: hold shm segments until the
    # parent has collected every original rank's result.
    cfg.done_event.wait(timeout=cfg.deadlock_timeout * 2 + 10)
    fabric.stop_drain()
    fabric.close_shm()
    for q in [*cfg.queues, cfg.result_queue]:
        try:
            q.cancel_join_thread()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def run_spmd_processes(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
    join_timeout: Optional[float] = None,
    resilient: bool = False,
    spawn_slots: Optional[int] = None,
    **kwargs: Any,
) -> list[Any]:
    """Process-executor twin of ``run_spmd``; same contract, real processes.

    Called through ``run_spmd(..., executor="process")`` — see there for
    the full semantics (result ordering, ``RankFailure``, ``resilient``).
    ``spawn_slots`` pre-provisions inbox queues for ranks that may join
    the running world via ``Communicator.spawn`` (default from
    ``DDR_SPAWN_SLOTS``, else 0) — forked joiners need endpoints that
    existed before any fork.
    """
    from .executor import RankFailure, SpmdHangError, _stuck_detail

    if join_timeout is None:
        join_timeout = deadlock_timeout * 1.5 + 5.0
    if spawn_slots is None:
        try:
            spawn_slots = int(os.environ.get("DDR_SPAWN_SLOTS", "0") or 0)
        except ValueError:
            spawn_slots = 0
    spawn_slots = max(0, spawn_slots)
    ctx = mp.get_context(start_method())

    # One shared resource tracker for the whole process tree: started
    # before the fork, so children do not each spawn (and fight over)
    # their own tracker daemons.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass

    cfg = _ProcCfg(
        nprocs=nprocs,
        deadlock_timeout=deadlock_timeout,
        resilient=resilient,
        shm_prefix=_next_run_prefix(),
        queues=[ctx.Queue() for _ in range(nprocs + spawn_slots)],
        spawn_slots=spawn_slots,
        result_queue=ctx.Queue(),
        abort_event=ctx.Event(),
        abort_text=ctx.Array("c", 2048),
        done_event=ctx.Event(),
        trace_enabled=TRACER.enabled,
        trace_epoch=TRACER.epoch,
        plan=FAULTS.plan if FAULTS.active else None,
        policy=FAULTS.policy if FAULTS.active else None,
    )

    procs = [
        ctx.Process(
            target=_child_main,
            args=(cfg, rank, fn, args, kwargs),
            name=f"spmd-proc-{rank}",
            daemon=True,
        )
        for rank in range(nprocs)
    ]
    for proc in procs:
        proc.start()
    pids = {rank: proc.pid for rank, proc in enumerate(procs)}

    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    envelopes: dict[int, _ResultEnvelope] = {}
    pending = set(range(nprocs))

    def handle(env: _ResultEnvelope) -> None:
        envelopes[env.rank] = env
        pending.discard(env.rank)
        if env.kind == "ok":
            results[env.rank] = env.value
        elif env.kind == "crashed":
            results[env.rank] = env.value  # RankCrashError, as in resilient threads
        elif env.kind == "error":
            failures[env.rank] = env.value

    def handle_hard_death(rank: int, exitcode: Optional[int]) -> None:
        """A child vanished without reporting: killed or ``os._exit``."""
        pending.discard(rank)
        exc = ProcessFailedError(
            f"rank {rank} (pid {pids[rank]}) exited with code {exitcode} "
            f"without reporting a result"
        )
        if resilient:
            results[rank] = exc
            for peer in pending:
                try:
                    cfg.queues[peer].put((_ENV_DEAD, rank))
                except Exception:
                    pass
        else:
            failures[rank] = exc
            try:
                cfg.abort_text.value = repr(exc).encode("utf-8", "replace")[:2047]
            except Exception:
                pass
            cfg.abort_event.set()

    try:
        # Progress-renewed join, mirroring the thread executor: any result
        # (or detected death) within a window renews it; a silent window
        # declares the hang.
        while pending:
            progressed = False
            deadline = time.monotonic() + join_timeout
            while pending and time.monotonic() < deadline:
                try:
                    env = cfg.result_queue.get(timeout=0.25)
                except _queue.Empty:
                    env = None
                if env is not None:
                    handle(env)
                    progressed = True
                for rank in sorted(pending):
                    proc = procs[rank]
                    if proc.is_alive():
                        continue
                    # Give a just-exited child's envelope a moment to
                    # surface through the queue before declaring it dead.
                    try:
                        late = cfg.result_queue.get(timeout=0.5)
                    except _queue.Empty:
                        late = None
                    if late is not None:
                        handle(late)
                        progressed = True
                    if rank in pending:
                        handle_hard_death(rank, proc.exitcode)
                        progressed = True
            if pending and not progressed:
                stuck = sorted(pending)
                detail = "; ".join(
                    f"rank {rank} (pid {pids[rank]}) alive with no result"
                    for rank in stuck
                )
                fault_note = _stuck_detail([], dead=frozenset())
                if fault_note:
                    detail += f" {fault_note}"
                cfg.abort_event.set()
                for proc in (procs[r] for r in stuck):
                    proc.terminate()
                raise SpmdHangError(
                    stuck, join_timeout, detail, executor="process", pids=pids
                )
    finally:
        cfg.done_event.set()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in [*cfg.queues, cfg.result_queue]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
        # Anything still named under this run's prefix belongs to a rank
        # that never got to clean up (hard kill): reap it.
        sweep_prefix(cfg.shm_prefix)
        _merge_observability(envelopes.values())

    if failures:
        first_rank = min(failures)
        raise RankFailure(first_rank, failures[first_rank]) from failures[first_rank]
    if cfg.abort_event.is_set() and any(
        env.kind == "aborted" for env in envelopes.values()
    ):
        # Every original rank reported a *secondary* abort and nobody owned
        # the primary failure: it originated in a spawned rank, which has
        # no result slot.  Surface it like any rank failure.
        text = cfg.abort_text.value.decode("utf-8", "replace")
        exc = ProcessFailedError(text or "a spawned rank failed")
        raise RankFailure(-1, exc) from exc
    return results


def _merge_observability(envelopes) -> None:
    """Fold children's spans and fault stats into the parent singletons."""
    spans: list[SpanRecord] = []
    for env in envelopes:
        spans.extend(env.spans)
        for name, count in env.fault_stats.items():
            FAULTS.stats.incr(name, count)
    if spans and TRACER.enabled:
        TRACER.ingest(spans)
