"""POSIX shared-memory staging for the process executor (and ``shm`` transport).

When mpisim ranks are OS processes (``run_spmd(..., executor="process")``)
the zero-copy rendezvous transport is unavailable — a live buffer reference
cannot cross an address-space boundary.  The ``shm`` transport replaces it:
the sender packs its datatype selection straight into a
``multiprocessing.shared_memory`` segment (one copy), posts a tiny picklable
:class:`ShmTicket` through the control queue, and the receiver unpacks
straight out of the mapped segment (one copy).  That is the same two copies
as the packed baseline but without pickling megabytes through a pipe, and
with no per-message allocation once the pool is warm.

Lifecycle discipline (mirrors ``BufferCache``/``StagingPool`` in
``repro.core``/``repro.utils``):

* :class:`ShmArena` owns segment *names*: it creates, attaches, and — at
  close — unlinks them.  Creator-side segments carry the creating pid so a
  forked child never unlinks its parent's segments.
* :class:`ShmStagingPool` recycles segments by size class.  Each segment's
  first header byte is a drained flag written by the receiver when it has
  copied the payload out; the sender reuses a segment only once the flag is
  set, so no acknowledgement message is needed.
* Abnormal exits: every process registers :func:`release_all` via
  ``atexit``, and the process-executor parent sweeps ``/dev/shm`` by run
  prefix after the run (:func:`sweep_prefix`), so a hard-killed rank cannot
  leak segments.

The first :data:`HEADER_BYTES` bytes of every segment are reserved for the
drained flag; payload views start after the header.
"""

from __future__ import annotations

import atexit
import os
import threading
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from .errors import CommunicatorError, ProcessFailedError

__all__ = [
    "HEADER_BYTES",
    "ShmArena",
    "ShmSegment",
    "ShmStagingPool",
    "ShmTicket",
    "attach",
    "release_all",
    "sweep_prefix",
]

#: Reserved bytes at the head of every segment (flag byte + padding that
#: keeps payload views 16-byte aligned).
HEADER_BYTES = 16

_FLAG_IN_FLIGHT = 0
_FLAG_DRAINED = 1

#: Smallest segment the pool hands out; sub-4KiB messages share a page
#: anyway, so finer classes would only multiply the number of segments.
MIN_SEGMENT_BYTES = 4096


def _untrack(name: str) -> None:
    """Drop ``name`` from the multiprocessing resource tracker.

    On POSIX the tracker registers every ``SharedMemory`` (attach included,
    until 3.13's ``track=False``) and unlinks leftovers at interpreter exit
    with a "leaked shared_memory" warning.  We manage unlinking ourselves,
    so after a deliberate unlink/close the registration must go too.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass  # tracker gone at shutdown, or name never registered


class ShmSegment:
    """One shared-memory segment: header flag + payload bytes."""

    __slots__ = ("shm", "capacity", "owner", "pid")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self.capacity = shm.size - HEADER_BYTES
        self.owner = owner
        self.pid = os.getpid()

    @property
    def name(self) -> str:
        return self.shm.name

    # -- drained flag (receiver-to-sender, through the shared mapping) -------

    def mark_in_flight(self) -> None:
        self.shm.buf[0] = _FLAG_IN_FLIGHT

    def mark_drained(self) -> None:
        self.shm.buf[0] = _FLAG_DRAINED

    @property
    def drained(self) -> bool:
        return self.shm.buf[0] == _FLAG_DRAINED

    # -- payload access -------------------------------------------------------

    def view(self, dtype: np.dtype, count: int) -> np.ndarray:
        """A 1-D NumPy view of the payload area (no copy)."""
        dtype = np.dtype(dtype)
        nbytes = count * dtype.itemsize
        if nbytes > self.capacity:
            raise CommunicatorError(
                f"shm segment {self.name} holds {self.capacity} payload bytes, "
                f"{nbytes} requested"
            )
        return np.ndarray(count, dtype=dtype, buffer=self.shm.buf, offset=HEADER_BYTES)

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view.  Tolerates exported NumPy views (the
        mapping then lives until the views die; the name is still gone).

        Deliberately does *not* unregister from the resource tracker: the
        tracker daemon is shared by the whole process tree and its cache
        holds one entry per name no matter how many processes registered
        it (create and attach both register pre-3.13), so the single
        unregister belongs to whoever unlinks — the owner's
        :meth:`destroy`, or the parent's :func:`sweep_prefix`.
        """
        try:
            self.shm.close()
        except BufferError:
            pass

    def destroy(self) -> None:
        """Unlink the name (creator only) and unmap.  Safe to call twice.

        ``SharedMemory.unlink`` already unregisters from the resource
        tracker, so no explicit ``_untrack`` here — a second unregister
        would KeyError inside the shared tracker daemon.
        """
        if self.owner and self.pid == os.getpid():
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
        self.close()


# -- process-wide registries ---------------------------------------------------
#
# ``attach`` must resolve a ticket's name to a segment no matter which arena
# created it (under the thread executor, creator and receiver share one
# process), so the caches are module-level.  Forked children inherit the
# parent's entries; ``forget_foreign`` drops them (close, never unlink).

_LOCK = threading.Lock()
_OWNED: dict[str, ShmSegment] = {}
_ATTACHED: dict[str, ShmSegment] = {}


def attach(name: str) -> ShmSegment:
    """Resolve a segment name to a mapped segment (cached per process)."""
    with _LOCK:
        segment = _OWNED.get(name) or _ATTACHED.get(name)
        if segment is not None:
            return segment
    try:
        raw = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise ProcessFailedError(
            f"shared-memory segment {name!r} is gone; the sending rank "
            f"exited (or was killed) before this message was consumed"
        ) from None
    segment = ShmSegment(raw, owner=False)
    with _LOCK:
        # Lost race: another thread attached meanwhile — keep the first.
        existing = _OWNED.get(name) or _ATTACHED.get(name)
        if existing is not None:
            segment.close()
            return existing
        _ATTACHED[name] = segment
    return segment


def forget_foreign() -> None:
    """Drop registry entries created by another process (post-fork hygiene).

    A forked rank inherits its parent's caches; it must never unlink the
    parent's segments, only forget its copies of the handles.
    """
    pid = os.getpid()
    with _LOCK:
        for cache in (_OWNED, _ATTACHED):
            for name in [n for n, s in cache.items() if s.pid != pid]:
                cache.pop(name).close()


def release_all() -> None:
    """Destroy every segment this process created and unmap every attach.

    Registered via ``atexit`` so a normally-exiting process never leaks
    ``/dev/shm`` entries even when no explicit cleanup ran.
    """
    with _LOCK:
        owned = list(_OWNED.values())
        attached = list(_ATTACHED.values())
        _OWNED.clear()
        _ATTACHED.clear()
    for segment in owned:
        segment.destroy()
    for segment in attached:
        segment.close()


atexit.register(release_all)


def sweep_prefix(prefix: str) -> list[str]:
    """Unlink every ``/dev/shm`` entry starting with ``prefix``.

    The process-executor parent calls this after a run: ranks that exited
    normally already unlinked their own segments, so anything left belongs
    to a hard-killed rank.  Returns the names removed (for tests/logs).
    """
    shm_dir = "/dev/shm"
    removed: list[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:
            continue
        _untrack(name)
        removed.append(name)
        with _LOCK:
            for cache in (_OWNED, _ATTACHED):
                segment = cache.pop(name, None)
                if segment is not None:
                    segment.close()
    return removed


# -- arena + pool --------------------------------------------------------------


class ShmArena:
    """Creates (and at close, unlinks) shared-memory segments under a prefix."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._seq = 0
        self._segments: list[ShmSegment] = []
        self._lock = threading.Lock()

    def create(self, nbytes: int) -> ShmSegment:
        """A fresh segment with ``nbytes`` of payload capacity."""
        with self._lock:
            self._seq += 1
            name = f"{self.prefix}_{self._seq}"
        raw = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes + HEADER_BYTES
        )
        segment = ShmSegment(raw, owner=True)
        segment.mark_in_flight()
        with self._lock:
            self._segments.append(segment)
        with _LOCK:
            _OWNED[name] = segment
        return segment

    def segments(self) -> list[ShmSegment]:
        with self._lock:
            return list(self._segments)

    def close(self) -> None:
        """Unlink and unmap every segment this arena created."""
        with self._lock:
            segments = list(self._segments)
            self._segments.clear()
        for segment in segments:
            with _LOCK:
                _OWNED.pop(segment.name, None)
            segment.destroy()


class ShmStagingPool:
    """Size-classed reuse pool over an :class:`ShmArena`.

    ``acquire`` prefers a segment of the right class whose receiver has set
    the drained flag; only when every outstanding segment is still in
    flight does it create a new one.  This mirrors ``StagingPool``'s
    steady-state property for the paper's per-frame exchange: after one
    warm frame, no allocation (here: no ``shm_open``) happens again.
    """

    def __init__(self, prefix: str) -> None:
        self.arena = ShmArena(prefix)
        self._classes: dict[int, list[ShmSegment]] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _size_class(nbytes: int) -> int:
        size = MIN_SEGMENT_BYTES
        while size < nbytes:
            size <<= 1
        return size

    def acquire(self, nbytes: int) -> ShmSegment:
        """A segment with >= ``nbytes`` payload capacity, marked in-flight."""
        size = self._size_class(nbytes)
        with self._lock:
            for segment in self._classes.setdefault(size, []):
                if segment.drained:
                    segment.mark_in_flight()
                    return segment
        segment = self.arena.create(size)
        with self._lock:
            self._classes[size].append(segment)
        return segment

    def outstanding(self) -> int:
        """Segments currently in flight (diagnostics/tests)."""
        with self._lock:
            return sum(
                1
                for segments in self._classes.values()
                for segment in segments
                if not segment.drained
            )

    def close(self) -> None:
        with self._lock:
            self._classes.clear()
        self.arena.close()


class ShmTicket:
    """The picklable message payload for shm-staged traffic.

    Carries only the segment name and the payload geometry; the receiving
    process attaches by name and unpacks.  The creator-side reference to
    the segment (``_segment``) never crosses the pickle boundary — it
    exists so a message dropped sender-side by the fault plan can still
    release its segment back to the pool (:meth:`complete`, the same
    contract ``_ZeroCopyHandle.complete`` gives the drop path).
    """

    __slots__ = ("name", "dtype", "count", "_segment")

    def __init__(
        self,
        name: str,
        dtype: str,
        count: int,
        segment: Optional[ShmSegment] = None,
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.count = count
        self._segment = segment

    @property
    def nbytes(self) -> int:
        return self.count * np.dtype(self.dtype).itemsize

    def complete(self, error: Optional[BaseException] = None) -> None:
        """Release the segment without a receiver (dropped message)."""
        if self._segment is not None:
            self._segment.mark_drained()

    def __getstate__(self):
        return (self.name, self.dtype, self.count)

    def __setstate__(self, state):
        self.name, self.dtype, self.count = state
        self._segment = None

    def __repr__(self) -> str:
        return f"ShmTicket({self.name!r}, {self.dtype}, n={self.count})"
