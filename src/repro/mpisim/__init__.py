"""In-process MPI runtime (threads + mailboxes) with mpi4py-style API.

This substitutes for the real MPI the paper's DDR library runs on: the same
point-to-point matching rules, derived datatypes (including the subarray
types DDR builds), and the collectives the library and use cases require —
most importantly ``Alltoallw``.
"""

from . import datatypes
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    Communicator,
    Fabric,
    LAND,
    LOR,
    MAX,
    MIN,
    Op,
    PROD,
    SUM,
)
from .datatypes import (
    BYTE,
    CHAR,
    ContiguousType,
    Datatype,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    NamedType,
    SHORT,
    SubarrayType,
    UNSIGNED,
    UNSIGNED_CHAR,
    UNSIGNED_LONG,
    UNSIGNED_SHORT,
    VectorType,
    named_type_for,
)
from .errors import (
    AbortError,
    CommunicatorError,
    DatatypeError,
    MpiSimError,
    TimeoutError_,
    TruncationError,
)
from .executor import RankFailure, run_spmd, world_communicators
from .request import Request, Status, wait_all

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AbortError",
    "BAND",
    "BOR",
    "BYTE",
    "CHAR",
    "Communicator",
    "CommunicatorError",
    "ContiguousType",
    "DOUBLE",
    "Datatype",
    "DatatypeError",
    "FLOAT",
    "Fabric",
    "INT",
    "LAND",
    "LONG",
    "LOR",
    "MAX",
    "MIN",
    "MpiSimError",
    "NamedType",
    "Op",
    "PROD",
    "RankFailure",
    "Request",
    "SHORT",
    "SUM",
    "Status",
    "SubarrayType",
    "TimeoutError_",
    "TruncationError",
    "UNSIGNED",
    "UNSIGNED_CHAR",
    "UNSIGNED_LONG",
    "UNSIGNED_SHORT",
    "VectorType",
    "datatypes",
    "named_type_for",
    "run_spmd",
    "wait_all",
    "world_communicators",
]
