"""Error types for the in-process MPI runtime."""

from __future__ import annotations


class MpiSimError(RuntimeError):
    """Base class for all mpisim failures."""


class AbortError(MpiSimError):
    """Raised in every blocked rank when some rank fails (MPI_Abort semantics)."""


class TruncationError(MpiSimError):
    """A received message is larger than the posted receive buffer."""


class DatatypeError(MpiSimError, ValueError):
    """Invalid datatype construction or a type/buffer mismatch."""


class CommunicatorError(MpiSimError, ValueError):
    """Invalid rank, tag, or communicator usage."""


class TimeoutError_(MpiSimError):
    """A blocking operation waited longer than the fabric's deadlock timeout.

    Named with a trailing underscore to avoid shadowing :class:`TimeoutError`;
    it still subclasses ``RuntimeError`` so generic handlers catch it.
    """
