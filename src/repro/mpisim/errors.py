"""Error types for the in-process MPI runtime."""

from __future__ import annotations


class MpiSimError(RuntimeError):
    """Base class for all mpisim failures."""


class AbortError(MpiSimError):
    """Raised in every blocked rank when some rank fails (MPI_Abort semantics)."""


class TruncationError(MpiSimError):
    """A received message is larger than the posted receive buffer."""


class DatatypeError(MpiSimError, ValueError):
    """Invalid datatype construction or a type/buffer mismatch."""


class CommunicatorError(MpiSimError, ValueError):
    """Invalid rank, tag, or communicator usage."""


class TimeoutError_(MpiSimError):
    """A blocking operation waited longer than the fabric's deadlock timeout
    (or a per-operation deadline from a :class:`~repro.faults.ReliabilityPolicy`).

    Named with a trailing underscore to avoid shadowing :class:`TimeoutError`;
    it still subclasses ``RuntimeError`` so generic handlers catch it.
    """


class FaultInjectionError(MpiSimError):
    """Base class for failures surfaced by the fault-injection layer
    (:mod:`repro.faults`) after recovery was attempted or ruled out."""


class TransientFaultError(FaultInjectionError):
    """A retryable injected failure.

    Raised only at points where no communication state has changed (e.g.
    exchange-round entry), so catching it and retrying the operation is
    always safe.  Transient send/recv faults inside the transport never
    escape as this type — they are healed in place by the reliability
    layer's retry-with-backoff or escalated to
    :class:`RetriesExhaustedError`.
    """


class RetriesExhaustedError(FaultInjectionError):
    """An operation kept failing past the ``ReliabilityPolicy`` retry budget."""


class CorruptionError(FaultInjectionError):
    """A message failed its checksum and could not be re-retrieved."""


class RankCrashError(FaultInjectionError):
    """This rank was killed by the fault plan (simulated process death)."""
