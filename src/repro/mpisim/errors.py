"""Error types for the in-process MPI runtime."""

from __future__ import annotations


class MpiSimError(RuntimeError):
    """Base class for all mpisim failures."""


class AbortError(MpiSimError):
    """Raised in every blocked rank when some rank fails (MPI_Abort semantics)."""


class TruncationError(MpiSimError):
    """A received message is larger than the posted receive buffer."""


class DatatypeError(MpiSimError, ValueError):
    """Invalid datatype construction or a type/buffer mismatch."""


class CommunicatorError(MpiSimError, ValueError):
    """Invalid rank, tag, or communicator usage."""


class DeadlineError(MpiSimError):
    """A blocking operation waited longer than the fabric's deadlock timeout
    (or a per-operation deadline from a :class:`~repro.faults.ReliabilityPolicy`).

    Subclasses ``RuntimeError`` (not the builtin :class:`TimeoutError`) so
    generic handlers catch it.  Formerly exported as ``TimeoutError_``; that
    name remains as a deprecated alias.
    """


#: Deprecated alias kept for source compatibility; use :class:`DeadlineError`.
TimeoutError_ = DeadlineError


class RevokedError(MpiSimError):
    """The communicator was revoked (ULFM ``MPIX_Comm_revoke`` semantics).

    Every pending and future operation on a revoked communicator — and on
    any communicator derived from it — raises this instead of hanging.
    Fault-tolerant agreement (:meth:`Communicator.agree`) and
    :meth:`Communicator.shrink` still complete on a revoked communicator,
    which is how survivors rendezvous and rebuild.
    """


class ProcessFailedError(MpiSimError):
    """An operation involves a peer the liveness table knows is gone
    (ULFM ``MPI_ERR_PROC_FAILED`` semantics).

    Raised promptly — from the executor's liveness table, not a timeout —
    when a receive targets a dead source, a send targets a dead
    destination, or a rendezvous lane waits on a dead receiver.  Messages
    a rank managed to send before dying remain deliverable.
    """


class MemoryBudgetError(MpiSimError, MemoryError):
    """A staging allocation would exceed the configured ``MemoryBudget``
    (``DDR_MEM_BUDGET_MB``).

    Subclasses :class:`MemoryError` so generic OOM handlers still fire, and
    :class:`MpiSimError` so the chaos harness classifies it as a typed
    failure rather than a bare exception.  Raised *before* the allocation
    happens — the budget ledger is consulted first — so the process is never
    actually near the host's OOM killer when this surfaces.
    """


class FaultInjectionError(MpiSimError):
    """Base class for failures surfaced by the fault-injection layer
    (:mod:`repro.faults`) after recovery was attempted or ruled out."""


class TransientFaultError(FaultInjectionError):
    """A retryable injected failure.

    Raised only at points where no communication state has changed (e.g.
    exchange-round entry), so catching it and retrying the operation is
    always safe.  Transient send/recv faults inside the transport never
    escape as this type — they are healed in place by the reliability
    layer's retry-with-backoff or escalated to
    :class:`RetriesExhaustedError`.
    """


class RetriesExhaustedError(FaultInjectionError):
    """An operation kept failing past the ``ReliabilityPolicy`` retry budget."""


class CorruptionError(FaultInjectionError):
    """A message failed its checksum and could not be re-retrieved."""


class RankCrashError(FaultInjectionError):
    """This rank was killed by the fault plan (simulated process death)."""
