"""An in-process MPI runtime: ranks are threads, messages are NumPy copies.

Why this exists: the paper's DDR library drives ``MPI_Alltoallw`` with
subarray datatypes across a real cluster.  This environment has no MPI, so
we execute the *identical algorithm* on a thread-backed SPMD runtime with
matched-queue point-to-point semantics and the collectives DDR and the two
use cases need.  Message payloads are copied at send time (eager/buffered
semantics), so the usual MPI correctness discipline — no buffer reuse races,
ordered matching per (source, tag) — is preserved and testable.

Timing of the paper's *experiments* is handled separately by
``repro.netmodel``; this module is about moving real bytes correctly.
"""

from __future__ import annotations

import copy as _copy
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence

import numpy as np

from .datatypes import Datatype, named_type_for
from .errors import AbortError, CommunicatorError, TimeoutError_, TruncationError
from .request import CompletedRequest, DeferredRequest, Request, Status

ANY_SOURCE = -1
ANY_TAG = -1

#: Default seconds a blocking call may wait before declaring deadlock.  Long
#: enough for slow CI machines, short enough that a hung test fails visibly.
DEFAULT_DEADLOCK_TIMEOUT = 120.0


# ---------------------------------------------------------------------------
# Reduction operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Op:
    """A reduction operator (``MPI_Op``)."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", np.logical_and)
LOR = Op("MPI_LOR", np.logical_or)
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)


# ---------------------------------------------------------------------------
# Fabric: shared mailboxes + abort propagation
# ---------------------------------------------------------------------------


@dataclass
class _Message:
    source: int  # rank within the communicator
    tag: int
    internal: bool
    payload: Any  # ndarray for typed traffic, arbitrary object for lowercase API


class Fabric:
    """Shared state connecting every rank of one SPMD execution."""

    def __init__(self, nprocs: int, deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT) -> None:
        if nprocs < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.deadlock_timeout = deadlock_timeout
        self._locks = [threading.Lock() for _ in range(nprocs)]
        self._conds = [threading.Condition(lock) for lock in self._locks]
        self._mailboxes: dict[tuple[Hashable, int], deque[_Message]] = {}
        self._abort_exc: Optional[BaseException] = None

    # -- abort ------------------------------------------------------------

    def abort(self, exc: BaseException) -> None:
        """Record a failure and wake every waiting rank so they raise too."""
        self._abort_exc = exc
        for cond in self._conds:
            with cond:
                cond.notify_all()

    @property
    def aborted(self) -> Optional[BaseException]:
        return self._abort_exc

    def check_abort(self) -> None:
        if self._abort_exc is not None:
            raise AbortError(f"peer rank failed: {self._abort_exc!r}") from self._abort_exc

    # -- mailbox operations -------------------------------------------------

    def _box(self, comm_id: Hashable, world_rank: int) -> deque[_Message]:
        key = (comm_id, world_rank)
        box = self._mailboxes.get(key)
        if box is None:
            box = self._mailboxes.setdefault(key, deque())
        return box

    def post(self, comm_id: Hashable, dest_world: int, message: _Message) -> None:
        cond = self._conds[dest_world]
        with cond:
            self._box(comm_id, dest_world).append(message)
            cond.notify_all()

    def try_consume(
        self,
        comm_id: Hashable,
        my_world: int,
        match: Callable[[_Message], bool],
    ) -> Optional[_Message]:
        """Atomically remove and return the first matching message, if any."""
        cond = self._conds[my_world]
        with cond:
            return self._scan(comm_id, my_world, match)

    def _scan(
        self, comm_id: Hashable, my_world: int, match: Callable[[_Message], bool]
    ) -> Optional[_Message]:
        box = self._box(comm_id, my_world)
        for index, message in enumerate(box):
            if match(message):
                del box[index]
                return message
        return None

    def consume(
        self,
        comm_id: Hashable,
        my_world: int,
        match: Callable[[_Message], bool],
    ) -> _Message:
        """Blocking matched receive with abort and deadlock handling."""
        cond = self._conds[my_world]
        deadline = time.monotonic() + self.deadlock_timeout
        with cond:
            while True:
                self.check_abort()
                found = self._scan(comm_id, my_world, match)
                if found is not None:
                    return found
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError_(
                        f"rank (world {my_world}) blocked > {self.deadlock_timeout}s "
                        f"waiting on comm {comm_id!r}; likely deadlock"
                    )
                cond.wait(timeout=min(0.25, remaining))


# ---------------------------------------------------------------------------
# Communicator
# ---------------------------------------------------------------------------


def _payload_from(buf: np.ndarray, datatype: Optional[Datatype]) -> np.ndarray:
    """Pack a send buffer into a dense 1-D payload copy."""
    arr = np.asarray(buf)
    if datatype is not None:
        return datatype.pack(np.ascontiguousarray(arr))
    if not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr)
    return arr.reshape(-1).copy()


def _payload_into(buf: np.ndarray, datatype: Optional[Datatype], payload: np.ndarray) -> int:
    """Unpack a received payload into the user's buffer; returns bytes written."""
    if datatype is not None:
        datatype.unpack(buf, payload)
        return payload.size * payload.dtype.itemsize
    arr = np.asarray(buf)
    if not arr.flags["C_CONTIGUOUS"]:
        raise CommunicatorError("Recv into a non-contiguous buffer requires a datatype")
    flat = arr.reshape(-1)
    if payload.size > flat.size:
        raise TruncationError(
            f"message of {payload.size} elements truncated: receive buffer holds {flat.size}"
        )
    flat[: payload.size] = payload.astype(flat.dtype, copy=False)
    return payload.size * payload.dtype.itemsize


class Communicator:
    """One rank's endpoint of an MPI communicator.

    The uppercase methods move NumPy buffers (optionally through a derived
    :class:`~repro.mpisim.datatypes.Datatype`); the lowercase methods move
    arbitrary Python objects, mirroring mpi4py's convention.
    """

    def __init__(
        self,
        fabric: Fabric,
        comm_id: Hashable,
        world_ranks: Sequence[int],
        rank: int,
    ) -> None:
        self.fabric = fabric
        self.comm_id = comm_id
        self._world_ranks = tuple(world_ranks)
        self._rank = rank
        self._coll_seq = 0

    # -- introspection ------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._world_ranks)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    def world_rank_of(self, rank: int) -> int:
        return self._world_ranks[rank]

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise CommunicatorError(f"{what} {rank} out of range for size {self.size}")

    # -- point to point -------------------------------------------------------

    def Send(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int = 0,
        datatype: Optional[Datatype] = None,
    ) -> None:
        self._check_rank(dest, "dest")
        if tag < 0:
            raise CommunicatorError(f"user tags must be >= 0, got {tag}")
        payload = _payload_from(buf, datatype)
        self._post(dest, _Message(self._rank, tag, False, payload))

    def Isend(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int = 0,
        datatype: Optional[Datatype] = None,
    ) -> Request:
        # Eager buffered semantics: the payload is copied out immediately,
        # so the send completes at post time.
        self.Send(buf, dest, tag, datatype)
        return CompletedRequest(Status(source=self._rank, tag=tag))

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        datatype: Optional[Datatype] = None,
        status: Optional[Status] = None,
    ) -> Status:
        message = self._consume(self._match(source, tag, internal=False))
        nbytes = _payload_into(buf, datatype, message.payload)
        result = status or Status()
        result.source, result.tag, result.count_bytes = message.source, message.tag, nbytes
        return result

    def Irecv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        datatype: Optional[Datatype] = None,
    ) -> Request:
        stash: dict[str, _Message] = {}
        match = self._match(source, tag, internal=False)

        def test_fn() -> bool:
            if "msg" in stash:
                return True
            found = self.fabric.try_consume(
                self.comm_id, self._world_ranks[self._rank], match
            )
            if found is None:
                return False
            stash["msg"] = found
            return True

        def wait_fn() -> Status:
            message = stash.pop("msg", None)
            if message is None:
                message = self._consume(match)
            nbytes = _payload_into(buf, datatype, message.payload)
            return Status(source=message.source, tag=message.tag, count_bytes=nbytes)

        return DeferredRequest(test_fn, wait_fn)

    def Sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        send_datatype: Optional[Datatype] = None,
        recv_datatype: Optional[Datatype] = None,
    ) -> Status:
        self.Send(sendbuf, dest, sendtag, send_datatype)
        return self.Recv(recvbuf, source, recvtag, recv_datatype)

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        probe = {"hit": False}
        match = self._match(source, tag, internal=False)

        def peek(message: _Message) -> bool:
            if match(message):
                probe["hit"] = True
            return False  # never consume

        self.fabric.try_consume(self.comm_id, self._world_ranks[self._rank], peek)
        return probe["hit"]

    # lowercase (object) p2p ---------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "dest")
        self._post(dest, _Message(self._rank, tag, False, _safe_copy(obj)))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        message = self._consume(self._match(source, tag, internal=False))
        return message.payload

    # -- collectives ------------------------------------------------------------

    def Barrier(self) -> None:
        seq = self._next_seq()
        token = np.zeros(1, dtype=np.int8)
        if self._rank == 0:
            sink = np.zeros(1, dtype=np.int8)
            for source in range(1, self.size):
                self._coll_recv(sink, source, seq)
            for dest in range(1, self.size):
                self._coll_send(token, dest, seq)
        elif self.size > 1:
            self._coll_send(token, 0, seq)
            self._coll_recv(token, 0, seq)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._coll_send(np.asarray(buf), dest, seq)
        else:
            self._coll_recv(buf, root, seq)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._post(dest, _Message(self._rank, self._coll_tag(seq), True, _safe_copy(obj)))
            return obj
        message = self._consume(self._match(root, self._coll_tag(seq), internal=True))
        return message.payload

    def gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = _safe_copy(obj)
            for source in range(self.size):
                if source != root:
                    message = self._consume(
                        self._match(source, self._coll_tag(seq), internal=True)
                    )
                    out[source] = message.payload
            return out
        self._post(root, _Message(self._rank, self._coll_tag(seq), True, _safe_copy(obj)))
        return None

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError("scatter at root requires one object per rank")
            for dest in range(self.size):
                if dest != root:
                    self._post(
                        dest,
                        _Message(self._rank, self._coll_tag(seq), True, _safe_copy(objs[dest])),
                    )
            return _safe_copy(objs[root])
        message = self._consume(self._match(root, self._coll_tag(seq), internal=True))
        return message.payload

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise CommunicatorError("alltoall requires one object per rank")
        seq = self._next_seq()
        tag = self._coll_tag(seq)
        for dest in range(self.size):
            if dest != self._rank:
                self._post(dest, _Message(self._rank, tag, True, _safe_copy(objs[dest])))
        out: list[Any] = [None] * self.size
        out[self._rank] = _safe_copy(objs[self._rank])
        for source in range(self.size):
            if source != self._rank:
                message = self._consume(self._match(source, tag, internal=True))
                out[source] = message.payload
        return out

    def Gather(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], root: int = 0) -> None:
        """Gather equal-size blocks; ``recvbuf`` is (size, *block) at root."""
        self._check_rank(root, "root")
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        if self._rank == root:
            if recvbuf is None:
                raise CommunicatorError("root must supply recvbuf")
            out = recvbuf.reshape(self.size, -1)
            out[root] = send.reshape(-1)
            for source in range(self.size):
                if source != root:
                    self._coll_recv(out[source], source, seq)
        else:
            self._coll_send(send, root, seq)

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        self.Gather(sendbuf, recvbuf if self._rank == 0 else None, root=0)
        self.Bcast(recvbuf, root=0)

    def Gatherv(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        recvcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
    ) -> None:
        """Gather variable-size blocks into a flat buffer at ``root``."""
        self._check_rank(root, "root")
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf).reshape(-1)
        if self._rank == root:
            if recvbuf is None or recvcounts is None:
                raise CommunicatorError("root must supply recvbuf and recvcounts")
            if len(recvcounts) != self.size:
                raise CommunicatorError("recvcounts must have one entry per rank")
            if displs is None:
                displs = np.cumsum([0] + [int(c) for c in recvcounts[:-1]]).tolist()
            flat = recvbuf.reshape(-1)
            start = int(displs[root])
            count = int(recvcounts[root])
            if send.size != count:
                raise CommunicatorError(
                    f"root sends {send.size} elements but recvcounts[{root}] = {count}"
                )
            flat[start : start + count] = send
            for source in range(self.size):
                if source == root:
                    continue
                start = int(displs[source])
                count = int(recvcounts[source])
                self._coll_recv(flat[start : start + count], source, seq)
        else:
            self._coll_send(send, root, seq)

    def Scatterv(
        self,
        sendbuf: Optional[np.ndarray],
        sendcounts: Optional[Sequence[int]],
        recvbuf: np.ndarray,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
    ) -> None:
        """Scatter variable-size blocks out of a flat buffer at ``root``."""
        self._check_rank(root, "root")
        seq = self._next_seq()
        recv_flat = recvbuf.reshape(-1)
        if self._rank == root:
            if sendbuf is None or sendcounts is None:
                raise CommunicatorError("root must supply sendbuf and sendcounts")
            if len(sendcounts) != self.size:
                raise CommunicatorError("sendcounts must have one entry per rank")
            if displs is None:
                displs = np.cumsum([0] + [int(c) for c in sendcounts[:-1]]).tolist()
            flat = np.ascontiguousarray(sendbuf).reshape(-1)
            for dest in range(self.size):
                start = int(displs[dest])
                count = int(sendcounts[dest])
                chunk = flat[start : start + count]
                if dest == root:
                    if recv_flat.size < count:
                        raise TruncationError(
                            f"root recvbuf holds {recv_flat.size}, needs {count}"
                        )
                    recv_flat[:count] = chunk
                else:
                    self._coll_send(chunk, dest, seq)
        else:
            message = self._consume(
                self._match(root, self._coll_tag(seq), internal=True)
            )
            if message.payload.size > recv_flat.size:
                raise TruncationError(
                    f"scatterv lane {root}->{self._rank}: got {message.payload.size}, "
                    f"buffer holds {recv_flat.size}"
                )
            recv_flat[: message.payload.size] = message.payload.astype(
                recv_flat.dtype, copy=False
            )

    def Alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """Equal-block all-to-all: block ``d`` of sendbuf goes to rank ``d``."""
        send = np.ascontiguousarray(sendbuf).reshape(-1)
        recv = recvbuf.reshape(-1)
        if send.size % self.size or recv.size % self.size:
            raise CommunicatorError(
                f"Alltoall buffers must hold size*k elements "
                f"(got {send.size}/{recv.size} for {self.size} ranks)"
            )
        block = send.size // self.size
        counts = [block] * self.size
        displs = [d * block for d in range(self.size)]
        self.Alltoallv(send, counts, displs, recv, counts, displs)

    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        self._check_rank(root, "root")
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        if self._rank == root:
            accum = send.astype(send.dtype, copy=True)
            incoming = np.empty_like(accum)
            for source in range(self.size):
                if source != root:
                    self._coll_recv(incoming, source, seq)
                    accum = op.fn(accum, incoming)
            if recvbuf is None:
                raise CommunicatorError("root must supply recvbuf")
            np.copyto(recvbuf, accum.reshape(recvbuf.shape))
        else:
            self._coll_send(send, root, seq)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        self.Reduce(sendbuf, recvbuf, op=op, root=0)
        self.Bcast(recvbuf, root=0)

    def Reduce_scatter_block(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM
    ) -> None:
        """Reduce equal blocks, scatter block ``r`` to rank ``r``.

        ``sendbuf`` holds ``size`` blocks shaped like ``recvbuf``.
        """
        send = np.ascontiguousarray(sendbuf)
        recv_flat = recvbuf.reshape(-1)
        if send.size != recv_flat.size * self.size:
            raise CommunicatorError(
                f"Reduce_scatter_block: sendbuf has {send.size} elements, "
                f"expected {recv_flat.size} x {self.size}"
            )
        total = np.empty(send.size, dtype=send.dtype)
        self.Reduce(send, total if self._rank == 0 else None, op=op, root=0)
        block = recv_flat.size
        counts = [block] * self.size
        self.Scatterv(total if self._rank == 0 else None,
                      counts if self._rank == 0 else None, recvbuf, root=0)

    def Scan(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        """Inclusive prefix reduction: rank r receives op(x_0, ..., x_r)."""
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        accum = send.astype(send.dtype, copy=True)
        if self._rank > 0:
            incoming = np.empty_like(accum)
            self._coll_recv(incoming, self._rank - 1, seq)
            accum = op.fn(incoming, accum)
        if self._rank + 1 < self.size:
            self._coll_send(accum, self._rank + 1, seq)
        np.copyto(recvbuf, accum.reshape(recvbuf.shape))

    def Exscan(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        """Exclusive prefix reduction: rank r receives op(x_0, ..., x_{r-1});
        rank 0's recvbuf is left untouched (as in MPI)."""
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        if self._rank == 0:
            if self.size > 1:
                self._coll_send(send, 1, seq)
            return
        prefix = np.empty(send.reshape(-1).shape, dtype=send.dtype)
        self._coll_recv(prefix, self._rank - 1, seq)
        if self._rank + 1 < self.size:
            self._coll_send(op.fn(prefix.reshape(send.shape), send), self._rank + 1, seq)
        np.copyto(recvbuf, prefix.reshape(recvbuf.shape))

    def allreduce(self, value: Any, op: Op = SUM) -> Any:
        gathered = self.allgather(value)
        result = gathered[0]
        for item in gathered[1:]:
            result = op.fn(result, item)
        return result

    def Alltoallw(
        self,
        sendbuf: Optional[np.ndarray],
        sendtypes: Sequence[Optional[Datatype]],
        recvbuf: Optional[np.ndarray],
        recvtypes: Sequence[Optional[Datatype]],
    ) -> None:
        """General all-to-all with a per-peer datatype (DDR's workhorse).

        ``sendtypes[d]`` selects, out of ``sendbuf``, the elements destined
        for rank ``d``; ``None`` (or a zero-size type) means nothing moves on
        that lane.  Symmetrically for ``recvtypes``.
        """
        if len(sendtypes) != self.size or len(recvtypes) != self.size:
            raise CommunicatorError("Alltoallw requires one datatype slot per rank")
        seq = self._next_seq()
        tag = self._coll_tag(seq)

        # Self-exchange first: straight pack/unpack, no mailbox round-trip.
        stype = sendtypes[self._rank]
        rtype = recvtypes[self._rank]
        if stype is not None and stype.size_elements() > 0:
            if rtype is None or rtype.size_elements() != stype.size_elements():
                raise CommunicatorError("self send/recv types disagree in Alltoallw")
            assert sendbuf is not None and recvbuf is not None
            rtype.unpack(recvbuf, stype.pack(sendbuf))
        elif rtype is not None and rtype.size_elements() > 0:
            raise CommunicatorError("self send/recv types disagree in Alltoallw")

        for dest in range(self.size):
            if dest == self._rank:
                continue
            datatype = sendtypes[dest]
            if datatype is None or datatype.size_elements() == 0:
                continue
            assert sendbuf is not None
            self._post(dest, _Message(self._rank, tag, True, datatype.pack(sendbuf)))

        for source in range(self.size):
            if source == self._rank:
                continue
            datatype = recvtypes[source]
            if datatype is None or datatype.size_elements() == 0:
                continue
            assert recvbuf is not None
            message = self._consume(self._match(source, tag, internal=True))
            if message.payload.size != datatype.size_elements():
                raise TruncationError(
                    f"Alltoallw lane {source}->{self._rank}: got {message.payload.size} "
                    f"elements, type expects {datatype.size_elements()}"
                )
            datatype.unpack(recvbuf, message.payload)

    def Alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts: Sequence[int],
        sdispls: Sequence[int],
        recvbuf: np.ndarray,
        recvcounts: Sequence[int],
        rdispls: Sequence[int],
    ) -> None:
        """Vector all-to-all over flat element counts/displacements."""
        if not (
            len(sendcounts) == len(sdispls) == len(recvcounts) == len(rdispls) == self.size
        ):
            raise CommunicatorError("Alltoallv requires size-length count/displ arrays")
        seq = self._next_seq()
        tag = self._coll_tag(seq)
        sflat = np.ascontiguousarray(sendbuf).reshape(-1)
        rflat = recvbuf.reshape(-1)

        count = int(sendcounts[self._rank])
        if count:
            start_s, start_r = int(sdispls[self._rank]), int(rdispls[self._rank])
            if int(recvcounts[self._rank]) != count:
                raise CommunicatorError("self counts disagree in Alltoallv")
            rflat[start_r : start_r + count] = sflat[start_s : start_s + count]

        for dest in range(self.size):
            if dest == self._rank or not int(sendcounts[dest]):
                continue
            start = int(sdispls[dest])
            chunk = sflat[start : start + int(sendcounts[dest])].copy()
            self._post(dest, _Message(self._rank, tag, True, chunk))
        for source in range(self.size):
            if source == self._rank or not int(recvcounts[source]):
                continue
            message = self._consume(self._match(source, tag, internal=True))
            start = int(rdispls[source])
            expect = int(recvcounts[source])
            if message.payload.size != expect:
                raise TruncationError(
                    f"Alltoallv lane {source}->{self._rank}: got {message.payload.size}, "
                    f"expected {expect}"
                )
            rflat[start : start + expect] = message.payload

    # -- communicator management ---------------------------------------------

    def Split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """Partition by ``color``; rank order within a part follows ``key``.

        Returns ``None`` for ``color < 0`` (``MPI_UNDEFINED``).
        """
        seq = self._next_seq()
        triples = self.allgather((int(color), int(key), self._rank))
        if color < 0:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        world_ranks = tuple(self._world_ranks[r] for _, r in members)
        my_index = next(i for i, (_, r) in enumerate(members) if r == self._rank)
        new_id = ("split", self.comm_id, seq, int(color))
        return Communicator(self.fabric, new_id, world_ranks, my_index)

    def Dup(self) -> "Communicator":
        seq = self._next_seq()
        new_id = ("dup", self.comm_id, seq)
        return Communicator(self.fabric, new_id, self._world_ranks, self._rank)

    # -- internals ---------------------------------------------------------------

    def _next_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    @staticmethod
    def _coll_tag(seq: int) -> int:
        return seq

    def _post(self, dest: int, message: _Message) -> None:
        self.fabric.check_abort()
        self.fabric.post(self.comm_id, self._world_ranks[dest], message)

    def _consume(self, match: Callable[[_Message], bool]) -> _Message:
        return self.fabric.consume(self.comm_id, self._world_ranks[self._rank], match)

    def _coll_send(self, buf: np.ndarray, dest: int, seq: int) -> None:
        payload = np.ascontiguousarray(buf).reshape(-1).copy()
        self._post(dest, _Message(self._rank, self._coll_tag(seq), True, payload))

    def _coll_recv(self, buf: np.ndarray, source: int, seq: int) -> None:
        message = self._consume(self._match(source, self._coll_tag(seq), internal=True))
        flat = np.asarray(buf).reshape(-1)
        if message.payload.size != flat.size:
            raise TruncationError(
                f"collective lane {source}->{self._rank}: got {message.payload.size} "
                f"elements, buffer holds {flat.size}"
            )
        flat[:] = message.payload.astype(flat.dtype, copy=False)

    def _match(self, source: int, tag: int, internal: bool) -> Callable[[_Message], bool]:
        def fn(message: _Message) -> bool:
            if message.internal != internal:
                return False
            if source != ANY_SOURCE and message.source != source:
                return False
            if tag != ANY_TAG and message.tag != tag:
                return False
            return True

        return fn


def _safe_copy(obj: Any) -> Any:
    """Isolate sender and receiver: arrays are copied, objects deep-copied.

    This mimics the serialization barrier of real MPI so tests catch
    accidental shared-state mutation between "processes".
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    try:
        return _copy.deepcopy(obj)
    except Exception:
        return obj
