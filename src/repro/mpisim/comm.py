"""An in-process MPI runtime: ranks are threads, messages are NumPy copies
— or, on the zero-copy transport, direct shared-memory copies.

Why this exists: the paper's DDR library drives ``MPI_Alltoallw`` with
subarray datatypes across a real cluster.  This environment has no MPI, so
we execute the *identical algorithm* on a thread-backed SPMD runtime with
matched-queue point-to-point semantics and the collectives DDR and the two
use cases need.  By default, message payloads are copied at send time
(eager/buffered semantics), so the usual MPI correctness discipline — no
buffer reuse races, ordered matching per (source, tag) — is preserved and
testable.

Because every rank is a thread of one process, the operations DDR's hot
path uses (``Alltoallw``, ``Sendrecv``, rendezvous ``Isend``) also support
a *zero-copy transport*: the sender posts a live reference to its buffer
and the receiver copies straight from the sender's datatype view into its
own — one ``np.copyto`` per lane instead of pack + payload + unpack.  A
per-message completion event keeps the sender inside the operation until
every receiver has drained its lane, so the sender's buffer is provably
stable for the duration of the exchange.  Select transports globally with
:func:`set_transport` / the ``DDR_TRANSPORT`` environment variable, or per
scope with the :func:`transport` context manager; the packed path remains
fully supported for debugging and as the benchmark baseline.

The send/recv/collective paths consult the process-wide fault layer
(:data:`repro.faults.injector.FAULTS`) behind a single attribute check, so
a seeded :class:`~repro.faults.FaultPlan` can delay, drop, corrupt, or
transiently fail traffic deterministically — and the recovery machinery
(checksum verify-and-reretrieve, retry with exponential backoff,
per-operation deadlines) turns those faults into healed operations or
prompt typed errors.  With no plan installed the cost is one attribute
load per operation.

Timing of the paper's *experiments* is handled separately by
``repro.netmodel``; this module is about moving real bytes correctly.
"""

from __future__ import annotations

import copy as _copy
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional, Sequence

import numpy as np

from ..faults.injector import FAULTS
from ..obs.tracer import TRACER
from ..utils.membudget import MEMORY_BUDGET
from ..utils.timing import TRANSFER_COUNTERS
from .datatypes import Datatype, named_type_for
from .errors import (
    AbortError,
    CommunicatorError,
    DeadlineError,
    ProcessFailedError,
    RankCrashError,
    RevokedError,
    TruncationError,
)
from .request import CompletedRequest, DeferredRequest, Request, Status
from .shm import ShmStagingPool, ShmTicket
from .shm import attach as _shm_attach

ANY_SOURCE = -1
ANY_TAG = -1

#: Default seconds a blocking call may wait before declaring deadlock.  Long
#: enough for slow CI machines, short enough that a hung test fails visibly.
DEFAULT_DEADLOCK_TIMEOUT = 120.0


# ---------------------------------------------------------------------------
# Transport selection
# ---------------------------------------------------------------------------

#: Rendezvous shared-memory transport: one direct copy per lane.  Requires
#: every rank to share one address space (the thread executor).
TRANSPORT_ZEROCOPY = "zerocopy"
#: Eager staged transport: pack -> mailbox payload -> unpack.
TRANSPORT_PACKED = "packed"
#: Staged transport through POSIX shared-memory segments: pack into a
#: shared segment, post a tiny ticket, unpack out of the mapping.  The
#: cross-process analogue of ``packed`` without pickling payload bytes;
#: ``zerocopy`` degrades to this on fabrics that cannot share live buffer
#: references (the process executor).
TRANSPORT_SHM = "shm"

_VALID_TRANSPORTS = (TRANSPORT_ZEROCOPY, TRANSPORT_PACKED, TRANSPORT_SHM)

#: Messages below this many payload bytes skip shm staging: a pickled
#: ndarray through the queue beats a segment round-trip at tiny sizes.
SHM_MIN_BYTES = 512


def _validated_transport(mode: str) -> str:
    mode = mode.strip().lower()
    if mode not in _VALID_TRANSPORTS:
        raise CommunicatorError(
            f"unknown transport {mode!r} (use one of {_VALID_TRANSPORTS})"
        )
    return mode


_default_transport = _validated_transport(
    os.environ.get("DDR_TRANSPORT", TRANSPORT_ZEROCOPY)
)


def set_transport(mode: str) -> None:
    """Set the process-wide default transport (``zerocopy`` or ``packed``)."""
    global _default_transport
    _default_transport = _validated_transport(mode)


def get_transport() -> str:
    return _default_transport


@contextmanager
def transport(mode: str) -> Iterator[None]:
    """Run a block under the given default transport (e.g. to force the
    packed baseline for debugging or benchmarking)."""
    previous = get_transport()
    set_transport(mode)
    try:
        yield
    finally:
        set_transport(previous)


class _ZeroCopyHandle:
    """Rendezvous payload: a live reference to the sender's buffer.

    The receiver copies straight out of ``buffer`` (through ``datatype``'s
    selection when given) and then sets ``done``; the sender stays inside
    the posting operation until ``done`` is set, so the buffer cannot be
    reused or freed while a receiver still reads it.  ``error`` records a
    receiver-side failure for diagnostics; the sender still completes, as
    a real MPI sender would for a receiver-local truncation error.
    """

    __slots__ = ("buffer", "datatype", "done", "error", "dest_world")

    def __init__(
        self,
        buffer: np.ndarray,
        datatype: Optional[Datatype],
        dest_world: Optional[int] = None,
    ) -> None:
        self.buffer = buffer
        self.datatype = datatype
        self.done = threading.Event()
        self.error: Optional[BaseException] = None
        #: World rank of the receiver, so a sender blocked in the rendezvous
        #: can notice (via the liveness table) that its receiver died.
        self.dest_world = dest_world

    def size_elements(self) -> int:
        if self.datatype is not None:
            return self.datatype.size_elements()
        return int(self.buffer.size)

    def itemsize(self) -> int:
        return int(self.buffer.dtype.itemsize)

    def complete(self, error: Optional[BaseException] = None) -> None:
        self.error = error
        self.done.set()


# ---------------------------------------------------------------------------
# Reduction operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Op:
    """A reduction operator (``MPI_Op``)."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", np.logical_and)
LOR = Op("MPI_LOR", np.logical_or)
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)


# ---------------------------------------------------------------------------
# Fabric: shared mailboxes + abort propagation
# ---------------------------------------------------------------------------


@dataclass
class _Message:
    source: int  # rank within the communicator
    tag: int
    internal: bool
    payload: Any  # ndarray for typed traffic, arbitrary object for lowercase API
    # Set by the fault layer only (see repro.faults.injector): a CRC32 seal
    # over the staged payload, and — for an injected corruption — the
    # sender's retained pristine payload, the verify-and-reretrieve source.
    checksum: Optional[int] = None
    pristine: Any = None
    # Staging-budget charge carried by the message: bytes reserved against
    # ``budget_rank``'s ledger when the payload was staged, released by
    # whoever drains the message (deliver, purge, or error path).
    budget_rank: Optional[int] = None
    budget_bytes: int = 0


class Fabric:
    """Shared state connecting every rank of one SPMD execution."""

    #: Whether rank-to-rank traffic may carry live buffer references (the
    #: zero-copy rendezvous transport).  True here — every rank is a thread
    #: of this process.  The process executor's fabric sets this False and
    #: ``resolve_transport`` degrades ``zerocopy`` to ``shm``.
    supports_zerocopy = True

    def __init__(self, nprocs: int, deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT) -> None:
        if nprocs < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.deadlock_timeout = deadlock_timeout
        self._locks = [threading.Lock() for _ in range(nprocs)]
        self._conds = [threading.Condition(lock) for lock in self._locks]
        self._mailboxes: dict[tuple[Hashable, int], deque[_Message]] = {}
        self._abort_exc: Optional[BaseException] = None
        #: ULFM-style failure state.  ``hazard`` is the single attribute the
        #: hot path checks (the FAULTS/TRACER discipline): it flips to True
        #: the first time a rank dies, retires, or a communicator is
        #: revoked, and never flips back during a run, so the fault-free
        #: cost is one attribute load per operation.
        self.hazard = False
        self._dead: set[int] = set()         # crashed world ranks
        self._retired: set[int] = set()      # ranks that exited cleanly early
        self._gone: frozenset[int] = frozenset()  # dead | retired, for checks
        self._revoked: set[Hashable] = set()  # revoked communicator ids
        self._state_lock = threading.Lock()
        #: Cross-rank blackboard for layers built on top of the fabric (the
        #: resilience package keeps its buddy checkpoint store here), so
        #: higher layers get process-shared state without import cycles.
        self.shared: dict[str, Any] = {}
        self.shared_lock = threading.Lock()
        self._agreements: dict[Hashable, dict[str, Any]] = {}
        self._shm_pool: Optional[ShmStagingPool] = None
        self._shm_lock = threading.Lock()
        #: Segment-name prefix for this fabric's staging pool; the process
        #: executor overrides it with a per-run prefix so the parent can
        #: sweep ``/dev/shm`` for hard-killed ranks' leftovers.
        self.shm_prefix: Optional[str] = None
        #: Segment-name prefix for cross-process blackboard stores (the
        #: shm-backed buddy checkpoint store).  ``None`` on the thread
        #: fabric — there, ``shared`` is already one address space.
        self.blackboard_prefix: Optional[str] = None
        #: Whether the executor that owns this fabric runs in resilient
        #: mode (``run_spmd(..., resilient=True)``): a spawned rank that
        #: raises :class:`RankCrashError` is then marked dead instead of
        #: aborting the run, mirroring the original ranks' contract.
        self.resilient = False
        #: Next unallocated world rank (``Communicator.spawn`` grows from
        #: here) and failures raised by spawned ranks — those have no slot
        #: in the driver's result list, so the executor merges this dict
        #: into its failure report after the join.
        self._next_world = nprocs
        self.spawn_failures: dict[int, BaseException] = {}

    # -- shm staging ---------------------------------------------------------

    def shm_pool(self) -> ShmStagingPool:
        """Lazily-created staging pool for the ``shm`` transport."""
        with self._shm_lock:
            if self._shm_pool is None:
                prefix = self.shm_prefix or f"ddr{os.getpid()}_f{id(self):x}"
                self._shm_pool = ShmStagingPool(prefix)
            return self._shm_pool

    def close_shm(self) -> None:
        """Unlink any shm segments this fabric's pool created."""
        with self._shm_lock:
            pool, self._shm_pool = self._shm_pool, None
        if pool is not None:
            pool.close()

    # -- abort ------------------------------------------------------------

    def abort(self, exc: BaseException) -> None:
        """Record a failure and wake every waiting rank so they raise too."""
        self._abort_exc = exc
        for cond in self._conds:
            with cond:
                cond.notify_all()

    @property
    def aborted(self) -> Optional[BaseException]:
        return self._abort_exc

    def check_abort(self) -> None:
        if self._abort_exc is not None:
            raise AbortError(f"peer rank failed: {self._abort_exc!r}") from self._abort_exc

    # -- liveness + revocation (ULFM-style) --------------------------------

    def _wake_all(self) -> None:
        for cond in self._conds:
            with cond:
                cond.notify_all()

    def mark_dead(self, world_rank: int) -> None:
        """Record a crashed rank in the liveness table and wake every waiter.

        Blocked operations involving the dead rank then raise a prompt
        :class:`ProcessFailedError` instead of waiting out a timeout.
        """
        with self._state_lock:
            self._dead.add(world_rank)
            self._gone = frozenset(self._dead | self._retired)
        self.hazard = True
        self._wake_all()

    def mark_retired(self, world_rank: int) -> None:
        """Record a rank that finished its work and exited early.

        For liveness purposes a retired rank behaves like a dead one — it
        will never contribute to an agreement or send another message —
        but its already-sent messages stay deliverable and diagnostics
        report it as retired, not crashed.
        """
        with self._state_lock:
            self._retired.add(world_rank)
            self._gone = frozenset(self._dead | self._retired)
        self.hazard = True
        self._wake_all()

    def is_dead(self, world_rank: int) -> bool:
        return world_rank in self._dead

    def is_gone(self, world_rank: int) -> bool:
        """Dead or retired: the rank will never take part in another op."""
        return world_rank in self._gone

    def dead_ranks(self) -> frozenset[int]:
        return frozenset(self._dead)

    def gone_ranks(self) -> frozenset[int]:
        return self._gone

    def revoke(self, comm_id: Hashable) -> None:
        """Revoke a communicator: every pending or future operation on it
        (or on a communicator derived from it — lineage is checked) raises
        :class:`RevokedError`.  Idempotent; wakes all waiters."""
        with self._state_lock:
            self._revoked.add(comm_id)
        self.hazard = True
        self._wake_all()

    def is_revoked(self, lineage: Sequence[Hashable]) -> bool:
        revoked = self._revoked
        if not revoked:
            return False
        return not revoked.isdisjoint(lineage)

    def check_hazard(
        self,
        lineage: Sequence[Hashable],
        source_world: Optional[int],
        my_world: int,
    ) -> None:
        """Raise the typed ULFM error for a blocked op, if one applies.

        Callers only invoke this under ``self.hazard``; messages already in
        the mailbox are always drained first, so traffic a rank managed to
        send before dying remains deliverable.
        """
        if self._revoked and not self._revoked.isdisjoint(lineage):
            raise RevokedError(
                f"communicator {lineage[-1]!r} was revoked while rank "
                f"(world {my_world}) had a pending operation"
            )
        if source_world is not None and source_world in self._gone:
            kind = "crashed" if source_world in self._dead else "retired"
            raise ProcessFailedError(
                f"rank (world {my_world}) is waiting on world rank "
                f"{source_world}, which has {kind} and will never respond"
            )

    # -- fault-aware agreement ---------------------------------------------

    def agree_contribute(self, key: Hashable, world_rank: int, value: Any) -> None:
        with self._state_lock:
            entry = self._agreements.setdefault(key, {"values": {}, "reads": set()})
            entry["values"][world_rank] = value
        self._wake_all()

    def agree_poll(self, key: Hashable, members: Sequence[int]) -> Optional[dict[int, Any]]:
        """Return the contribution map once every live member contributed.

        Membership is re-evaluated against the liveness table on every
        poll, so a member dying mid-agreement unblocks the survivors.  The
        map only ever grows and dead ranks never contribute afterwards, so
        every caller that completes folds the same contribution set.
        """
        with self._state_lock:
            entry = self._agreements.setdefault(key, {"values": {}, "reads": set()})
            values = entry["values"]
            gone = self._gone
            if all(w in values for w in members if w not in gone):
                return dict(values)
            return None

    def agree_finish(self, key: Hashable, world_rank: int, members: Sequence[int]) -> None:
        """Garbage-collect an agreement once every live member has read it."""
        with self._state_lock:
            entry = self._agreements.get(key)
            if entry is None:
                return
            entry["reads"].add(world_rank)
            gone = self._gone
            if all(w in entry["reads"] for w in members if w not in gone):
                self._agreements.pop(key, None)

    # -- dynamic world growth (Communicator.spawn) ---------------------------

    def claim_world_slots(self, count: int) -> list[int]:
        """Allocate ``count`` fresh world ranks (called by the spawn root).

        The thread fabric grows in place: new per-rank condition variables
        are appended, so existing world ranks keep their indices and every
        established queue stays valid.  The process executor overrides this
        to hand out pre-provisioned reserve slots instead (forked ranks
        need queues that existed before the fork).
        """
        with self._state_lock:
            start = self._next_world
            for _ in range(count):
                lock = threading.Lock()
                self._locks.append(lock)
                self._conds.append(threading.Condition(lock))
            self.nprocs = len(self._locks)
            self._next_world = start + count
            return list(range(start, start + count))

    def note_world_slots(self, worlds: Sequence[int]) -> None:
        """Record world slots another rank's fabric claimed.

        On the thread fabric every rank shares one object, so this is a
        no-op beyond an idempotent counter bump; under the process executor
        each rank holds its own fabric and uses this to keep the slot
        allocator in lockstep with the spawn root.
        """
        if not worlds:
            return
        top = max(worlds) + 1
        with self._state_lock:
            while len(self._locks) < top:
                lock = threading.Lock()
                self._locks.append(lock)
                self._conds.append(threading.Condition(lock))
            self.nprocs = max(self.nprocs, len(self._locks))
            self._next_world = max(self._next_world, top)

    def launch_rank(
        self,
        world_rank: int,
        comm_id: Hashable,
        world_ranks: Sequence[int],
        rank: int,
        lineage: Sequence[Hashable],
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        """Start a freshly spawned rank running ``fn(comm, *args, **kwargs)``.

        Thread-fabric implementation: a daemon worker thread with the same
        failure contract as ``run_spmd``'s original workers — a clean
        return retires the rank in the liveness table, a
        :class:`RankCrashError` on a resilient fabric marks it dead, and
        anything else aborts the run and is recorded in
        ``spawn_failures`` (spawned ranks have no result-list slot).
        """
        comm = Communicator(self, comm_id, world_ranks, rank, lineage=lineage)

        def main() -> None:
            TRACER.set_thread_rank(world_rank)
            try:
                fn(comm, *args, **kwargs)
            except AbortError:
                pass
            except RankCrashError as exc:
                if self.resilient:
                    self.mark_dead(world_rank)
                else:
                    with self._state_lock:
                        self.spawn_failures[world_rank] = exc
                    self.abort(exc)
            except BaseException as exc:  # noqa: BLE001 - must propagate anything
                with self._state_lock:
                    self.spawn_failures[world_rank] = exc
                self.abort(exc)
            else:
                self.mark_retired(world_rank)

        threading.Thread(
            target=main, name=f"spmd-spawn-{world_rank}", daemon=True
        ).start()

    # -- mailbox operations -------------------------------------------------

    def _box(self, comm_id: Hashable, world_rank: int) -> deque[_Message]:
        key = (comm_id, world_rank)
        box = self._mailboxes.get(key)
        if box is None:
            box = self._mailboxes.setdefault(key, deque())
        return box

    def post(self, comm_id: Hashable, dest_world: int, message: _Message) -> None:
        cond = self._conds[dest_world]
        with cond:
            self._box(comm_id, dest_world).append(message)
            cond.notify_all()

    def try_consume(
        self,
        comm_id: Hashable,
        my_world: int,
        match: Callable[[_Message], bool],
    ) -> Optional[_Message]:
        """Atomically remove and return the first matching message, if any."""
        cond = self._conds[my_world]
        with cond:
            return self._scan(comm_id, my_world, match)

    def _scan(
        self, comm_id: Hashable, my_world: int, match: Callable[[_Message], bool]
    ) -> Optional[_Message]:
        box = self._box(comm_id, my_world)
        for index, message in enumerate(box):
            if match(message):
                del box[index]
                return message
        return None

    def consume(
        self,
        comm_id: Hashable,
        my_world: int,
        match: Callable[[_Message], bool],
        deadline_s: Optional[float] = None,
        source_world: Optional[int] = None,
        lineage: Optional[Sequence[Hashable]] = None,
    ) -> _Message:
        """Blocking matched receive with abort, failure, and deadlock handling.

        ``deadline_s`` (from a :class:`~repro.faults.ReliabilityPolicy`'s
        per-operation deadline) bounds this one receive below the global
        deadlock timeout, so a dropped message surfaces as a prompt, typed
        :class:`DeadlineError` instead of a full watchdog wait.

        ``source_world``/``lineage`` feed the liveness and revocation
        checks: if the awaited source is known dead (and no matching
        message is already queued) or the communicator is revoked, the
        wait ends in a typed error instead of a hang.  Both checks run
        only under :attr:`hazard`, and only after the mailbox scan, so
        messages sent before a crash stay deliverable.
        """
        timeout = self.deadlock_timeout
        per_op = deadline_s is not None and deadline_s < timeout
        if per_op:
            timeout = deadline_s
        cond = self._conds[my_world]
        deadline = time.monotonic() + timeout
        with cond:
            while True:
                self.check_abort()
                found = self._scan(comm_id, my_world, match)
                if found is not None:
                    return found
                if self.hazard:
                    self.check_hazard(
                        lineage if lineage is not None else (comm_id,),
                        source_world,
                        my_world,
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if per_op:
                        raise DeadlineError(
                            f"rank (world {my_world}) got no matching message on "
                            f"comm {comm_id!r} within the {timeout}s per-operation "
                            f"deadline; message lost or peer stalled "
                            f"({FAULTS.diagnostics()})"
                        )
                    raise DeadlineError(
                        f"rank (world {my_world}) blocked > {self.deadlock_timeout}s "
                        f"waiting on comm {comm_id!r}; likely deadlock"
                    )
                cond.wait(timeout=min(0.25, remaining))

    def mailbox_depth(
        self,
        world_rank: Optional[int] = None,
        comm_id: Optional[Hashable] = None,
    ) -> int:
        """Number of queued (undelivered) messages, for leak assertions.

        Counts across every mailbox by default; narrow with ``world_rank``
        (one receiver) and/or ``comm_id`` (one communicator).  Each rank's
        boxes are counted under that rank's own condition lock, so the
        total is a consistent per-rank snapshot even while senders post.
        """
        total = 0
        for (box_comm, box_rank), box in list(self._mailboxes.items()):
            if world_rank is not None and box_rank != world_rank:
                continue
            if comm_id is not None and box_comm != comm_id:
                continue
            with self._conds[box_rank]:
                total += len(box)
        return total


# ---------------------------------------------------------------------------
# Communicator
# ---------------------------------------------------------------------------


def _payload_from(buf: np.ndarray, datatype: Optional[Datatype]) -> np.ndarray:
    """Pack a send buffer into a dense 1-D payload copy."""
    arr = np.asarray(buf)
    if datatype is not None:
        return datatype.pack(np.ascontiguousarray(arr))
    if not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr)
    if TRANSFER_COUNTERS.enabled:
        TRANSFER_COUNTERS.count_alloc(arr.nbytes)
        TRANSFER_COUNTERS.count_copy("payload", arr.nbytes)
    return arr.reshape(-1).copy()


def _payload_into(buf: np.ndarray, datatype: Optional[Datatype], payload: np.ndarray) -> int:
    """Unpack a received payload into the user's buffer; returns bytes written."""
    if datatype is not None:
        if datatype.size_elements() != payload.size:
            # Same typed error the rendezvous path raises for a selection
            # mismatch, instead of numpy's broadcast ValueError.
            raise TruncationError(
                f"message of {payload.size} elements does not match receive "
                f"type selecting {datatype.size_elements()}"
            )
        datatype.unpack(buf, payload)
        return payload.size * payload.dtype.itemsize
    arr = np.asarray(buf)
    if not arr.flags["C_CONTIGUOUS"]:
        raise CommunicatorError("Recv into a non-contiguous buffer requires a datatype")
    flat = arr.reshape(-1)
    if payload.size > flat.size:
        raise TruncationError(
            f"message of {payload.size} elements truncated: receive buffer holds {flat.size}"
        )
    flat[: payload.size] = payload.astype(flat.dtype, copy=False)
    if TRANSFER_COUNTERS.enabled:
        TRANSFER_COUNTERS.count_copy("unpack", payload.size * payload.dtype.itemsize)
    return payload.size * payload.dtype.itemsize


def _receive_rendezvous(
    buf: np.ndarray, datatype: Optional[Datatype], handle: _ZeroCopyHandle
) -> int:
    """Drain a zero-copy lane: copy from the sender's buffer into ``buf``.

    Always completes the handle — on success *and* on failure — so the
    blocked sender is released either way (receiver-local errors stay
    receiver-local, as in MPI).
    """
    try:
        nbytes = _rendezvous_copy(buf, datatype, handle)
    except BaseException as exc:
        handle.complete(exc)
        raise
    handle.complete()
    return nbytes


def _rendezvous_copy(
    buf: np.ndarray, datatype: Optional[Datatype], handle: _ZeroCopyHandle
) -> int:
    count = handle.size_elements()
    if datatype is not None:
        if datatype.size_elements() != count:
            raise TruncationError(
                f"message of {count} elements does not match receive type "
                f"selecting {datatype.size_elements()}"
            )
        src_type = handle.datatype
        if src_type is None:
            src_type = named_type_for(handle.buffer.dtype).Create_contiguous(count)
        return src_type.copy_into(handle.buffer, buf, datatype)
    arr = np.asarray(buf)
    if not arr.flags["C_CONTIGUOUS"]:
        raise CommunicatorError("Recv into a non-contiguous buffer requires a datatype")
    flat = arr.reshape(-1)
    if count > flat.size:
        raise TruncationError(
            f"message of {count} elements truncated: receive buffer holds {flat.size}"
        )
    if handle.datatype is not None:
        src_view = handle.datatype.view(handle.buffer)
        if src_view is None:
            flat[:count] = handle.datatype.pack(handle.buffer)
            if TRANSFER_COUNTERS.enabled:
                TRANSFER_COUNTERS.count_copy("payload", count * handle.itemsize())
            return count * handle.itemsize()
    else:
        src_view = handle.buffer.reshape(-1)
    np.copyto(flat[:count].reshape(src_view.shape), src_view, casting="unsafe")
    if TRANSFER_COUNTERS.enabled:
        TRANSFER_COUNTERS.count_copy("direct", count * handle.itemsize())
    return count * handle.itemsize()


def _receive_shm(buf: np.ndarray, datatype: Optional[Datatype], ticket: ShmTicket) -> int:
    """Drain an shm-staged message: unpack out of the mapped segment.

    The drained flag is set in all cases — success and receiver-local
    error alike — so the sender's pool can recycle the segment (the same
    always-release contract the rendezvous path keeps for its sender).
    """
    segment = _shm_attach(ticket.name)
    try:
        return _payload_into(
            buf, datatype, segment.view(np.dtype(ticket.dtype), ticket.count)
        )
    finally:
        segment.mark_drained()


def _release_budget(message: "_Message") -> None:
    """Return a message's staging-budget charge to its sender's ledger.

    Idempotent (the charge is zeroed once released) so deliver-then-error
    paths cannot double-credit, and runs on every drain outcome — success,
    truncation, purge — matching the always-release contract the transport
    keeps for rendezvous handles and shm segments.
    """
    if message.budget_bytes:
        MEMORY_BUDGET.release(message.budget_bytes, rank=message.budget_rank)
        message.budget_bytes = 0


def _receive_payload(buf: np.ndarray, datatype: Optional[Datatype], message: "_Message") -> int:
    """Unified typed receive: staged payloads, shm tickets, and rendezvous."""
    try:
        if isinstance(message.payload, _ZeroCopyHandle):
            return _receive_rendezvous(buf, datatype, message.payload)
        if isinstance(message.payload, ShmTicket):
            return _receive_shm(buf, datatype, message.payload)
        return _payload_into(buf, datatype, message.payload)
    finally:
        _release_budget(message)


def _discard_payload(payload: Any) -> None:
    """Drop a message without delivering it, releasing transport resources.

    The purge counterpart of :func:`_receive_payload`: a rendezvous handle
    must complete (or its sender blocks forever) and an shm ticket must be
    marked drained (or its segment never returns to the pool).  Dense
    payloads just fall to the garbage collector.
    """
    if isinstance(payload, _ZeroCopyHandle):
        payload.complete()
    elif isinstance(payload, ShmTicket):
        _shm_attach(payload.name).mark_drained()


class Communicator:
    """One rank's endpoint of an MPI communicator.

    The uppercase methods move NumPy buffers (optionally through a derived
    :class:`~repro.mpisim.datatypes.Datatype`); the lowercase methods move
    arbitrary Python objects, mirroring mpi4py's convention.
    """

    def __init__(
        self,
        fabric: Fabric,
        comm_id: Hashable,
        world_ranks: Sequence[int],
        rank: int,
        lineage: Optional[Sequence[Hashable]] = None,
    ) -> None:
        self.fabric = fabric
        self.comm_id = comm_id
        self._world_ranks = tuple(world_ranks)
        self._rank = rank
        self._coll_seq = 0
        #: This communicator's id plus every ancestor it was derived from
        #: (Split/Dup chain).  Revoking an ancestor revokes every descendant;
        #: ``shrink`` starts a fresh lineage so survivors can rebuild on a
        #: clean communicator even though the parent is revoked.
        self._lineage: tuple[Hashable, ...] = (
            tuple(lineage) + (comm_id,) if lineage is not None else (comm_id,)
        )
        # agree/shrink keep their own sequence counters: after a crash the
        # survivors' collective counters may have diverged, but recovery
        # protocols call agree/shrink in lockstep.
        self._agree_seq = 0
        self._shrink_seq = 0
        #: Per-endpoint transport override; ``None`` follows the process-wide
        #: default.  Endpoints are per-rank objects, so this is thread-safe.
        self.transport: Optional[str] = None

    def resolve_transport(self, override: Optional[str] = None) -> str:
        """Effective transport: ``override`` > ``self.transport`` > process default.

        On a fabric that cannot share live buffer references (the process
        executor), ``zerocopy`` degrades to ``shm`` — the schedule IR and
        every call site stay transport-agnostic; only the lane mechanics
        change underneath them.
        """
        if override is not None:
            mode = _validated_transport(override)
        elif self.transport is not None:
            mode = _validated_transport(self.transport)
        else:
            mode = _default_transport
        if mode == TRANSPORT_ZEROCOPY and not self.fabric.supports_zerocopy:
            return TRANSPORT_SHM
        return mode

    # -- introspection ------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._world_ranks)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    def world_rank_of(self, rank: int) -> int:
        return self._world_ranks[rank]

    @property
    def world_ranks(self) -> tuple[int, ...]:
        """World ranks of every member, in communicator rank order."""
        return self._world_ranks

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise CommunicatorError(f"{what} {rank} out of range for size {self.size}")

    # -- ULFM-style fault tolerance -----------------------------------------

    @property
    def revoked(self) -> bool:
        return self.fabric.hazard and self.fabric.is_revoked(self._lineage)

    def peer_failed(self, rank: int) -> bool:
        """True if the liveness table says this member crashed or retired."""
        return self.fabric.hazard and self.fabric.is_gone(self._world_ranks[rank])

    def failed_ranks(self) -> tuple[int, ...]:
        """Members (communicator ranks) the liveness table knows are gone."""
        if not self.fabric.hazard:
            return ()
        gone = self.fabric.gone_ranks()
        return tuple(r for r, w in enumerate(self._world_ranks) if w in gone)

    def revoke(self) -> None:
        """Revoke this communicator and every one derived from it.

        All pending and future operations on revoked communicators raise
        :class:`RevokedError`; ``agree`` and ``shrink`` still complete, so
        survivors use ``revoke`` to kick every peer out of whatever
        collective it is blocked in before rebuilding.  Idempotent.
        """
        self.fabric.revoke(self.comm_id)

    def agree(
        self,
        value: Any = True,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> Any:
        """Fault-tolerant agreement (ULFM ``MPIX_Comm_agree``).

        Completes even on a revoked communicator and even when members
        have crashed: completion requires a contribution from every member
        still live in the executor's liveness table, re-evaluated as
        deaths are recorded.  The result folds *all* contributions present
        (including from ranks that died after contributing) in world-rank
        order with ``combine`` (default: logical AND via ``a and b``), so
        every completing member computes the same value.

        Survivors must call ``agree`` in the same order (its sequence
        counter is independent of the regular collectives, whose counters
        may have diverged at the moment of a crash).
        """
        fab = self.fabric
        self._agree_seq += 1
        key = ("agree", self.comm_id, self._agree_seq)
        my_world = self._world_ranks[self._rank]
        fab.agree_contribute(key, my_world, value)
        if combine is None:
            combine = lambda a, b: a and b  # noqa: E731
        deadline = time.monotonic() + fab.deadlock_timeout
        cond = fab._conds[my_world]
        while True:
            fab.check_abort()
            values = fab.agree_poll(key, self._world_ranks)
            if values is not None:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineError(
                    f"agree on comm {self.comm_id!r} blocked > "
                    f"{fab.deadlock_timeout}s; a member neither contributed "
                    f"nor was declared dead"
                )
            with cond:
                cond.wait(timeout=min(0.25, remaining))
        result: Any = None
        first = True
        for world in sorted(values):
            result = values[world] if first else combine(result, values[world])
            first = False
        fab.agree_finish(key, my_world, self._world_ranks)
        return result

    def shrink(self, dead: Optional[frozenset[int]] = None) -> "Communicator":
        """Build a dense-ranked survivor communicator (ULFM ``MPIX_Comm_shrink``).

        The failed set comes from the executor's liveness table, not
        timeouts: every survivor contributes its view of the dead/retired
        world ranks and the agreed union is excluded.  Pass ``dead`` (an
        agreed set of world ranks) to skip the internal agreement when the
        caller already ran one.  Survivors keep their relative order and
        are renumbered densely from 0.  The new communicator starts a
        fresh lineage, so it works even though its parent is revoked.
        """
        if dead is None:
            observed = frozenset(
                w for w in self._world_ranks if self.fabric.is_gone(w)
            )
            dead = self.agree(observed, combine=lambda a, b: a | b)
        survivors = tuple(w for w in self._world_ranks if w not in dead)
        my_world = self._world_ranks[self._rank]
        if my_world not in survivors:
            raise CommunicatorError(
                f"rank (world {my_world}) is in the agreed failed set and "
                f"cannot join the shrunken communicator"
            )
        self._shrink_seq += 1
        new_id = ("shrink", self.comm_id, self._shrink_seq)
        new_comm = Communicator(
            self.fabric, new_id, survivors, survivors.index(my_world)
        )
        new_comm.transport = self.transport
        return new_comm

    def spawn(self, count: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> "Communicator":
        """Grow the world: launch ``count`` new ranks and merge them in.

        The inverse of :meth:`shrink`, and the one-call analogue of
        ``MPI_Comm_spawn`` + ``MPI_Intercomm_merge``: every current member
        calls ``spawn`` collectively with the same ``count``; rank 0 claims
        fresh world slots and launches them running
        ``fn(newcomm, *args, **kwargs)``.  Returns the merged communicator —
        existing members keep their rank order, spawned ranks are appended
        densely after them.  The merged communicator *shares* this one's
        lineage (unlike ``shrink``, which starts a fresh one): revoking the
        parent must still kick spawned ranks out of their collectives, so
        crash recovery keeps working across a grow.

        Under the process executor the new ranks are forked from the spawn
        root and occupy reserve queue slots provisioned at launch
        (``run_spmd(..., spawn_slots=k)`` or ``DDR_SPAWN_SLOTS``); the
        thread executor grows without pre-provisioning.  A spawned rank
        that returns from ``fn`` retires in the liveness table; its return
        value is discarded (spawned ranks have no slot in the driver's
        result list), so workers that produce data should communicate it.
        """
        if count < 1:
            raise CommunicatorError(f"spawn count must be >= 1, got {count}")
        seq = self._next_seq()
        new_worlds = self.bcast(
            self.fabric.claim_world_slots(count) if self._rank == 0 else None,
            root=0,
        )
        self.fabric.note_world_slots(new_worlds)
        new_id = ("spawn", self.comm_id, seq)
        merged = self._world_ranks + tuple(new_worlds)
        if self._rank == 0:
            base = len(self._world_ranks)
            for offset, world in enumerate(new_worlds):
                self.fabric.launch_rank(
                    world, new_id, merged, base + offset, self._lineage, fn, args, kwargs
                )
        new_comm = Communicator(
            self.fabric, new_id, merged, self._rank, lineage=self._lineage
        )
        new_comm.transport = self.transport
        return new_comm

    # -- tracing hooks -------------------------------------------------------
    #
    # Every hook is guarded by a single ``TRACER.enabled`` check before any
    # span attribute is computed (the TransferCounters discipline), so the
    # disabled cost on the hot path is one attribute load per operation.

    def _span(self, name: str, **attrs):
        return TRACER.span(name, rank=self._world_ranks[self._rank], **attrs)

    @staticmethod
    def _nbytes_of(buf: np.ndarray, datatype: Optional[Datatype]) -> int:
        if datatype is not None:
            return datatype.size_elements() * np.asarray(buf).dtype.itemsize
        arr = np.asarray(buf)
        return int(arr.size) * arr.dtype.itemsize

    # -- staging-budget hooks -------------------------------------------------

    def _charge_staging(self, nbytes: int, what: str) -> int:
        """Alloc-fault hook plus predictive budget reserve for one staged
        buffer.

        Runs *before* the allocation, so an over-budget staging surfaces
        as a typed :class:`~repro.mpisim.errors.MemoryBudgetError` rather
        than an ambient ``MemoryError`` mid-pack.  Returns the bytes
        actually reserved (0 when no budget is active) for the message to
        carry to its release site.
        """
        world = self._world_ranks[self._rank]
        if FAULTS.active:
            FAULTS.on_alloc(world, nbytes)
        if MEMORY_BUDGET.active:
            MEMORY_BUDGET.reserve(nbytes, what, rank=world)
            return nbytes
        return 0

    def _staged_message(
        self, tag: int, internal: bool, payload: Any, charged: int
    ) -> _Message:
        """Wrap a staged payload, carrying its budget charge for release."""
        message = _Message(self._rank, tag, internal, payload)
        if charged:
            message.budget_rank = self._world_ranks[self._rank]
            message.budget_bytes = charged
        return message

    # -- point to point -------------------------------------------------------

    def Send(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int = 0,
        datatype: Optional[Datatype] = None,
    ) -> None:
        if TRACER.enabled:
            with self._span(
                "mpi.Send", peer=dest, tag=tag, nbytes=self._nbytes_of(buf, datatype)
            ):
                return self._send(buf, dest, tag, datatype)
        return self._send(buf, dest, tag, datatype)

    def _send(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int,
        datatype: Optional[Datatype],
    ) -> None:
        self._check_rank(dest, "dest")
        if tag < 0:
            raise CommunicatorError(f"user tags must be >= 0, got {tag}")
        if self.resolve_transport() == TRANSPORT_SHM:
            staged = self._stage_shm(buf, datatype)
            if staged is not None:
                ticket, charged = staged
                self._post(dest, self._staged_message(tag, False, ticket, charged))
                return
        nbytes = self._nbytes_of(buf, datatype)
        charged = self._charge_staging(nbytes, "packed payload")
        payload = _payload_from(buf, datatype)
        self._post(dest, self._staged_message(tag, False, payload, charged))

    def _stage_shm(
        self, buf: np.ndarray, datatype: Optional[Datatype]
    ) -> Optional[tuple[ShmTicket, int]]:
        """Pack ``buf`` into a pooled shm segment; ``None`` below threshold
        (tiny messages travel faster as pickled payloads).  Returns the
        ticket plus the bytes charged against the staging budget."""
        arr = np.asarray(buf)
        if datatype is not None:
            count = datatype.size_elements()
        else:
            count = int(arr.size)
        nbytes = count * arr.dtype.itemsize
        if nbytes < SHM_MIN_BYTES:
            return None
        charged = self._charge_staging(nbytes, "shm staging")
        segment = self.fabric.shm_pool().acquire(nbytes)
        view = segment.view(arr.dtype, count)
        if datatype is not None:
            datatype.pack(np.ascontiguousarray(arr), out=view)
        else:
            if not arr.flags["C_CONTIGUOUS"]:
                arr = np.ascontiguousarray(arr)
            view[:] = arr.reshape(-1)
        if TRANSFER_COUNTERS.enabled:
            TRANSFER_COUNTERS.count_copy("payload", nbytes)
        return ShmTicket(segment.name, arr.dtype.str, count, segment=segment), charged

    def Isend(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int = 0,
        datatype: Optional[Datatype] = None,
        rendezvous: bool = False,
    ) -> Request:
        """Nonblocking send.

        Default is eager buffered semantics: the payload is copied out
        immediately, so the send completes at post time and the buffer may
        be reused right away.  With ``rendezvous=True`` (and the zero-copy
        transport active) the receiver copies directly from ``buf``; the
        buffer must stay untouched until the returned request completes —
        standard MPI nonblocking discipline, now actually load-bearing.
        """
        if TRACER.enabled:
            with self._span(
                "mpi.Isend",
                peer=dest,
                tag=tag,
                rendezvous=rendezvous,
                nbytes=self._nbytes_of(buf, datatype),
            ):
                return self._isend(buf, dest, tag, datatype, rendezvous)
        return self._isend(buf, dest, tag, datatype, rendezvous)

    def _isend(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int,
        datatype: Optional[Datatype],
        rendezvous: bool,
    ) -> Request:
        if rendezvous and self.resolve_transport() == TRANSPORT_ZEROCOPY:
            handle = self._post_rendezvous(buf, dest, tag, datatype, internal=False)
            if handle is not None:
                status = Status(source=self._rank, tag=tag)

                def wait_fn() -> Status:
                    self._await_handles((handle,))
                    return status

                return DeferredRequest(handle.done.is_set, wait_fn)
        self.Send(buf, dest, tag, datatype)
        return CompletedRequest(Status(source=self._rank, tag=tag))

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        datatype: Optional[Datatype] = None,
        status: Optional[Status] = None,
    ) -> Status:
        if TRACER.enabled:
            with self._span("mpi.Recv", peer=source, tag=tag) as span:
                result = self._recv(buf, source, tag, datatype, status)
                span.set(nbytes=result.count_bytes, source=result.source)
                return result
        return self._recv(buf, source, tag, datatype, status)

    def _recv(
        self,
        buf: np.ndarray,
        source: int,
        tag: int,
        datatype: Optional[Datatype],
        status: Optional[Status],
    ) -> Status:
        message = self._consume(self._match(source, tag, internal=False), source)
        nbytes = _receive_payload(buf, datatype, message)
        result = status or Status()
        result.source, result.tag, result.count_bytes = message.source, message.tag, nbytes
        return result

    def Irecv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        datatype: Optional[Datatype] = None,
    ) -> Request:
        stash: dict[str, _Message] = {}
        match = self._match(source, tag, internal=False)

        def test_fn() -> bool:
            if "msg" in stash:
                return True
            found = self.fabric.try_consume(
                self.comm_id, self._world_ranks[self._rank], match
            )
            if found is None:
                return False
            if FAULTS.active:
                FAULTS.on_deliver(found)
            stash["msg"] = found
            return True

        def wait_fn() -> Status:
            message = stash.pop("msg", None)
            if message is None:
                message = self._consume(match, source)
            nbytes = _receive_payload(buf, datatype, message)
            return Status(source=message.source, tag=message.tag, count_bytes=nbytes)

        return DeferredRequest(test_fn, wait_fn)

    def Sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        send_datatype: Optional[Datatype] = None,
        recv_datatype: Optional[Datatype] = None,
    ) -> Status:
        if TRACER.enabled:
            with self._span(
                "mpi.Sendrecv",
                peer=dest,
                source=source,
                tag=sendtag,
                nbytes=self._nbytes_of(sendbuf, send_datatype),
            ):
                return self._sendrecv(
                    sendbuf, dest, recvbuf, source, sendtag, recvtag,
                    send_datatype, recv_datatype,
                )
        return self._sendrecv(
            sendbuf, dest, recvbuf, source, sendtag, recvtag,
            send_datatype, recv_datatype,
        )

    def _sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int,
        sendtag: int,
        recvtag: int,
        send_datatype: Optional[Datatype],
        recv_datatype: Optional[Datatype],
    ) -> Status:
        # Zero-copy rendezvous: post a live buffer reference, satisfy our
        # receive (which drains the partner's handle and releases them),
        # then wait for the partner to drain ours.  Both endpoints make
        # progress before blocking, so symmetric pairs cannot deadlock.
        # Self-exchange stays on the staged path: the user may legally pass
        # overlapping buffers there.
        if dest != self._rank and self.resolve_transport() == TRANSPORT_ZEROCOPY:
            self._check_rank(dest, "dest")
            if sendtag < 0:
                raise CommunicatorError(f"user tags must be >= 0, got {sendtag}")
            handle = self._post_rendezvous(
                sendbuf, dest, sendtag, send_datatype, internal=False
            )
            if handle is not None:
                result = self.Recv(recvbuf, source, recvtag, recv_datatype)
                self._await_handles((handle,))
                return result
        self.Send(sendbuf, dest, sendtag, send_datatype)
        return self.Recv(recvbuf, source, recvtag, recv_datatype)

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        probe = {"hit": False}
        match = self._match(source, tag, internal=False)

        def peek(message: _Message) -> bool:
            if match(message):
                probe["hit"] = True
            return False  # never consume

        self.fabric.try_consume(self.comm_id, self._world_ranks[self._rank], peek)
        return probe["hit"]

    def purge(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> int:
        """Discard every queued message matching ``(source, tag)``.

        The cleanup path for receives that were posted and then abandoned
        (a timed-out frame under a drop policy): the straggler lands in the
        mailbox under its unique tag and would otherwise sit there forever.
        Transport resources are released — a rendezvous sender is unblocked,
        an shm segment is returned to its pool — and the number of purged
        messages is returned.  Only user-level (non-internal) messages are
        eligible; collective traffic is never purged.
        """
        match = self._match(source, tag, internal=False)
        purged = 0
        while True:
            found = self.fabric.try_consume(
                self.comm_id, self._world_ranks[self._rank], match
            )
            if found is None:
                return purged
            _discard_payload(found.payload)
            _release_budget(found)
            purged += 1

    # lowercase (object) p2p ---------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "dest")
        self._post(dest, _Message(self._rank, tag, False, _safe_copy(obj)))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        message = self._consume(self._match(source, tag, internal=False), source)
        _release_budget(message)
        payload = message.payload
        if isinstance(payload, _ZeroCopyHandle):
            # A rendezvous (uppercase) send drained by the object API:
            # materialise a private copy and release the sender.
            try:
                if payload.datatype is not None:
                    data = payload.datatype.pack(payload.buffer)
                else:
                    data = payload.buffer.copy()
            except BaseException as exc:
                payload.complete(exc)
                raise
            payload.complete()
            return data
        if isinstance(payload, ShmTicket):
            # An shm-staged (uppercase) send drained by the object API:
            # copy out of the mapping and release the segment.
            segment = _shm_attach(payload.name)
            try:
                return segment.view(np.dtype(payload.dtype), payload.count).copy()
            finally:
                segment.mark_drained()
        return payload

    # -- collectives ------------------------------------------------------------

    def Barrier(self) -> None:
        if TRACER.enabled:
            with self._span("mpi.Barrier"):
                return self._barrier()
        return self._barrier()

    def _barrier(self) -> None:
        seq = self._next_seq()
        token = np.zeros(1, dtype=np.int8)
        if self._rank == 0:
            sink = np.zeros(1, dtype=np.int8)
            for source in range(1, self.size):
                self._coll_recv(sink, source, seq)
            for dest in range(1, self.size):
                self._coll_send(token, dest, seq)
        elif self.size > 1:
            self._coll_send(token, 0, seq)
            self._coll_recv(token, 0, seq)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._coll_send(np.asarray(buf), dest, seq)
        else:
            self._coll_recv(buf, root, seq)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    message = _Message(self._rank, self._coll_tag(seq), True, _safe_copy(obj))
                    self._post(dest, message)
            return obj
        message = self._consume(self._match(root, self._coll_tag(seq), internal=True), root)
        return message.payload

    def gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = _safe_copy(obj)
            for source in range(self.size):
                if source != root:
                    message = self._consume(
                        self._match(source, self._coll_tag(seq), internal=True), source
                    )
                    out[source] = message.payload
            return out
        self._post(root, _Message(self._rank, self._coll_tag(seq), True, _safe_copy(obj)))
        return None

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        seq = self._next_seq()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError("scatter at root requires one object per rank")
            for dest in range(self.size):
                if dest != root:
                    self._post(
                        dest,
                        _Message(self._rank, self._coll_tag(seq), True, _safe_copy(objs[dest])),
                    )
            return _safe_copy(objs[root])
        message = self._consume(self._match(root, self._coll_tag(seq), internal=True), root)
        return message.payload

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise CommunicatorError("alltoall requires one object per rank")
        seq = self._next_seq()
        tag = self._coll_tag(seq)
        for dest in range(self.size):
            if dest != self._rank:
                self._post(dest, _Message(self._rank, tag, True, _safe_copy(objs[dest])))
        out: list[Any] = [None] * self.size
        out[self._rank] = _safe_copy(objs[self._rank])
        for source in range(self.size):
            if source != self._rank:
                message = self._consume(self._match(source, tag, internal=True), source)
                out[source] = message.payload
        return out

    def Gather(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], root: int = 0) -> None:
        """Gather equal-size blocks; ``recvbuf`` is (size, *block) at root."""
        self._check_rank(root, "root")
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        if self._rank == root:
            if recvbuf is None:
                raise CommunicatorError("root must supply recvbuf")
            out = recvbuf.reshape(self.size, -1)
            out[root] = send.reshape(-1)
            for source in range(self.size):
                if source != root:
                    self._coll_recv(out[source], source, seq)
        else:
            self._coll_send(send, root, seq)

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        self.Gather(sendbuf, recvbuf if self._rank == 0 else None, root=0)
        self.Bcast(recvbuf, root=0)

    def Gatherv(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        recvcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
    ) -> None:
        """Gather variable-size blocks into a flat buffer at ``root``."""
        self._check_rank(root, "root")
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf).reshape(-1)
        if self._rank == root:
            if recvbuf is None or recvcounts is None:
                raise CommunicatorError("root must supply recvbuf and recvcounts")
            if len(recvcounts) != self.size:
                raise CommunicatorError("recvcounts must have one entry per rank")
            if displs is None:
                displs = np.cumsum([0] + [int(c) for c in recvcounts[:-1]]).tolist()
            flat = recvbuf.reshape(-1)
            start = int(displs[root])
            count = int(recvcounts[root])
            if send.size != count:
                raise CommunicatorError(
                    f"root sends {send.size} elements but recvcounts[{root}] = {count}"
                )
            flat[start : start + count] = send
            for source in range(self.size):
                if source == root:
                    continue
                start = int(displs[source])
                count = int(recvcounts[source])
                self._coll_recv(flat[start : start + count], source, seq)
        else:
            self._coll_send(send, root, seq)

    def Scatterv(
        self,
        sendbuf: Optional[np.ndarray],
        sendcounts: Optional[Sequence[int]],
        recvbuf: np.ndarray,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
    ) -> None:
        """Scatter variable-size blocks out of a flat buffer at ``root``."""
        self._check_rank(root, "root")
        seq = self._next_seq()
        recv_flat = recvbuf.reshape(-1)
        if self._rank == root:
            if sendbuf is None or sendcounts is None:
                raise CommunicatorError("root must supply sendbuf and sendcounts")
            if len(sendcounts) != self.size:
                raise CommunicatorError("sendcounts must have one entry per rank")
            if displs is None:
                displs = np.cumsum([0] + [int(c) for c in sendcounts[:-1]]).tolist()
            flat = np.ascontiguousarray(sendbuf).reshape(-1)
            for dest in range(self.size):
                start = int(displs[dest])
                count = int(sendcounts[dest])
                chunk = flat[start : start + count]
                if dest == root:
                    if recv_flat.size < count:
                        raise TruncationError(
                            f"root recvbuf holds {recv_flat.size}, needs {count}"
                        )
                    recv_flat[:count] = chunk
                else:
                    self._coll_send(chunk, dest, seq)
        else:
            message = self._consume(
                self._match(root, self._coll_tag(seq), internal=True), root
            )
            if message.payload.size > recv_flat.size:
                raise TruncationError(
                    f"scatterv lane {root}->{self._rank}: got {message.payload.size}, "
                    f"buffer holds {recv_flat.size}"
                )
            recv_flat[: message.payload.size] = message.payload.astype(
                recv_flat.dtype, copy=False
            )

    def Alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """Equal-block all-to-all: block ``d`` of sendbuf goes to rank ``d``."""
        send = np.ascontiguousarray(sendbuf).reshape(-1)
        recv = recvbuf.reshape(-1)
        if send.size % self.size or recv.size % self.size:
            raise CommunicatorError(
                f"Alltoall buffers must hold size*k elements "
                f"(got {send.size}/{recv.size} for {self.size} ranks)"
            )
        block = send.size // self.size
        counts = [block] * self.size
        displs = [d * block for d in range(self.size)]
        self.Alltoallv(send, counts, displs, recv, counts, displs)

    def Reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        self._check_rank(root, "root")
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        if self._rank == root:
            accum = send.astype(send.dtype, copy=True)
            incoming = np.empty_like(accum)
            for source in range(self.size):
                if source != root:
                    self._coll_recv(incoming, source, seq)
                    accum = op.fn(accum, incoming)
            if recvbuf is None:
                raise CommunicatorError("root must supply recvbuf")
            np.copyto(recvbuf, accum.reshape(recvbuf.shape))
        else:
            self._coll_send(send, root, seq)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        self.Reduce(sendbuf, recvbuf, op=op, root=0)
        self.Bcast(recvbuf, root=0)

    def Reduce_scatter_block(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM
    ) -> None:
        """Reduce equal blocks, scatter block ``r`` to rank ``r``.

        ``sendbuf`` holds ``size`` blocks shaped like ``recvbuf``.
        """
        send = np.ascontiguousarray(sendbuf)
        recv_flat = recvbuf.reshape(-1)
        if send.size != recv_flat.size * self.size:
            raise CommunicatorError(
                f"Reduce_scatter_block: sendbuf has {send.size} elements, "
                f"expected {recv_flat.size} x {self.size}"
            )
        total = np.empty(send.size, dtype=send.dtype)
        self.Reduce(send, total if self._rank == 0 else None, op=op, root=0)
        block = recv_flat.size
        counts = [block] * self.size
        self.Scatterv(total if self._rank == 0 else None,
                      counts if self._rank == 0 else None, recvbuf, root=0)

    def Scan(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        """Inclusive prefix reduction: rank r receives op(x_0, ..., x_r)."""
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        accum = send.astype(send.dtype, copy=True)
        if self._rank > 0:
            incoming = np.empty_like(accum)
            self._coll_recv(incoming, self._rank - 1, seq)
            accum = op.fn(incoming, accum)
        if self._rank + 1 < self.size:
            self._coll_send(accum, self._rank + 1, seq)
        np.copyto(recvbuf, accum.reshape(recvbuf.shape))

    def Exscan(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op = SUM) -> None:
        """Exclusive prefix reduction: rank r receives op(x_0, ..., x_{r-1});
        rank 0's recvbuf is left untouched (as in MPI)."""
        seq = self._next_seq()
        send = np.ascontiguousarray(sendbuf)
        if self._rank == 0:
            if self.size > 1:
                self._coll_send(send, 1, seq)
            return
        prefix = np.empty(send.reshape(-1).shape, dtype=send.dtype)
        self._coll_recv(prefix, self._rank - 1, seq)
        if self._rank + 1 < self.size:
            self._coll_send(op.fn(prefix.reshape(send.shape), send), self._rank + 1, seq)
        np.copyto(recvbuf, prefix.reshape(recvbuf.shape))

    def allreduce(self, value: Any, op: Op = SUM) -> Any:
        gathered = self.allgather(value)
        result = gathered[0]
        for item in gathered[1:]:
            result = op.fn(result, item)
        return result

    def Alltoallw(
        self,
        sendbuf: Optional[np.ndarray],
        sendtypes: Sequence[Optional[Datatype]],
        recvbuf: Optional[np.ndarray],
        recvtypes: Sequence[Optional[Datatype]],
        transport: Optional[str] = None,
    ) -> None:
        """General all-to-all with a per-peer datatype (DDR's workhorse).

        ``sendtypes[d]`` selects, out of ``sendbuf``, the elements destined
        for rank ``d``; ``None`` (or a zero-size type) means nothing moves on
        that lane.  Symmetrically for ``recvtypes``.

        On the zero-copy transport each lane is one direct copy from the
        sender's buffer view into the receiver's; the sender stays in the
        collective until every one of its lanes has been drained, which
        guarantees its buffer is stable for the whole exchange.  Pass
        ``transport="packed"`` to force the staged baseline for this call.
        """
        if TRACER.enabled:
            nbytes = 0
            if sendbuf is not None:
                itemsize = np.asarray(sendbuf).dtype.itemsize
                nbytes = itemsize * sum(
                    t.size_elements() for t in sendtypes if t is not None
                )
            lanes = sum(
                1 for t in sendtypes if t is not None and t.size_elements() > 0
            )
            with self._span(
                "mpi.Alltoallw",
                nbytes=nbytes,
                lanes=lanes,
                transport=self.resolve_transport(transport),
            ):
                return self._alltoallw(sendbuf, sendtypes, recvbuf, recvtypes, transport)
        return self._alltoallw(sendbuf, sendtypes, recvbuf, recvtypes, transport)

    def _alltoallw(
        self,
        sendbuf: Optional[np.ndarray],
        sendtypes: Sequence[Optional[Datatype]],
        recvbuf: Optional[np.ndarray],
        recvtypes: Sequence[Optional[Datatype]],
        transport: Optional[str],
    ) -> None:
        if len(sendtypes) != self.size or len(recvtypes) != self.size:
            raise CommunicatorError("Alltoallw requires one datatype slot per rank")
        mode = self.resolve_transport(transport)
        zero_copy = mode == TRANSPORT_ZEROCOPY
        shm_mode = mode == TRANSPORT_SHM
        seq = self._next_seq()
        tag = self._coll_tag(seq)

        # Self-exchange first: no mailbox round-trip.  The direct path is
        # taken only when the two buffers cannot alias; pack/unpack remains
        # the safe fallback for overlapping self-transfers.  The self lane
        # never leaves this process, so shm mode copies directly too.
        stype = sendtypes[self._rank]
        rtype = recvtypes[self._rank]
        if stype is not None and stype.size_elements() > 0:
            if rtype is None or rtype.size_elements() != stype.size_elements():
                raise CommunicatorError("self send/recv types disagree in Alltoallw")
            assert sendbuf is not None and recvbuf is not None
            if (zero_copy or shm_mode) and not np.may_share_memory(sendbuf, recvbuf):
                stype.copy_into(sendbuf, recvbuf, rtype)
            else:
                rtype.unpack(recvbuf, stype.pack(sendbuf))
        elif rtype is not None and rtype.size_elements() > 0:
            raise CommunicatorError("self send/recv types disagree in Alltoallw")

        handles: list[_ZeroCopyHandle] = []
        for dest in range(self.size):
            if dest == self._rank:
                continue
            datatype = sendtypes[dest]
            if datatype is None or datatype.size_elements() == 0:
                continue
            assert sendbuf is not None
            if zero_copy:
                # Validate geometry sender-side (as pack would) so errors
                # surface on the offending rank, then post the reference.
                datatype.view(sendbuf)
                handle = _ZeroCopyHandle(
                    sendbuf, datatype, dest_world=self._world_ranks[dest]
                )
                handles.append(handle)
                self._post(dest, _Message(self._rank, tag, True, handle))
                continue
            if shm_mode:
                staged = self._stage_shm(sendbuf, datatype)
                if staged is not None:
                    ticket, charged = staged
                    self._post(dest, self._staged_message(tag, True, ticket, charged))
                    continue
            nbytes = datatype.size_elements() * np.asarray(sendbuf).dtype.itemsize
            charged = self._charge_staging(nbytes, "Alltoallw lane")
            self._post(
                dest, self._staged_message(tag, True, datatype.pack(sendbuf), charged)
            )

        for source in range(self.size):
            if source == self._rank:
                continue
            datatype = recvtypes[source]
            if datatype is None or datatype.size_elements() == 0:
                continue
            assert recvbuf is not None
            message = self._consume(self._match(source, tag, internal=True), source)
            payload = message.payload
            try:
                if isinstance(payload, _ZeroCopyHandle):
                    got = payload.size_elements()
                elif isinstance(payload, ShmTicket):
                    got = payload.count
                else:
                    got = int(payload.size)
                if got != datatype.size_elements():
                    complete = getattr(payload, "complete", None)
                    if callable(complete):
                        complete()  # release the sender; the error is ours
                    raise TruncationError(
                        f"Alltoallw lane {source}->{self._rank}: got {got} "
                        f"elements, type expects {datatype.size_elements()}"
                    )
                if isinstance(payload, _ZeroCopyHandle):
                    _receive_rendezvous(recvbuf, datatype, payload)
                elif isinstance(payload, ShmTicket):
                    _receive_shm(recvbuf, datatype, payload)
                else:
                    datatype.unpack(recvbuf, payload)
            finally:
                _release_budget(message)

        if handles:
            self._await_handles(handles)

    def Alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts: Sequence[int],
        sdispls: Sequence[int],
        recvbuf: np.ndarray,
        recvcounts: Sequence[int],
        rdispls: Sequence[int],
    ) -> None:
        """Vector all-to-all over flat element counts/displacements."""
        if TRACER.enabled:
            itemsize = np.asarray(sendbuf).dtype.itemsize
            with self._span(
                "mpi.Alltoallv",
                nbytes=itemsize * int(sum(int(c) for c in sendcounts)),
            ):
                return self._alltoallv(
                    sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls
                )
        return self._alltoallv(sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)

    def _alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts: Sequence[int],
        sdispls: Sequence[int],
        recvbuf: np.ndarray,
        recvcounts: Sequence[int],
        rdispls: Sequence[int],
    ) -> None:
        if not (
            len(sendcounts) == len(sdispls) == len(recvcounts) == len(rdispls) == self.size
        ):
            raise CommunicatorError("Alltoallv requires size-length count/displ arrays")
        seq = self._next_seq()
        tag = self._coll_tag(seq)
        sflat = np.ascontiguousarray(sendbuf).reshape(-1)
        rflat = recvbuf.reshape(-1)

        count = int(sendcounts[self._rank])
        if count:
            start_s, start_r = int(sdispls[self._rank]), int(rdispls[self._rank])
            if int(recvcounts[self._rank]) != count:
                raise CommunicatorError("self counts disagree in Alltoallv")
            rflat[start_r : start_r + count] = sflat[start_s : start_s + count]

        for dest in range(self.size):
            if dest == self._rank or not int(sendcounts[dest]):
                continue
            start = int(sdispls[dest])
            chunk = sflat[start : start + int(sendcounts[dest])].copy()
            self._post(dest, _Message(self._rank, tag, True, chunk))
        for source in range(self.size):
            if source == self._rank or not int(recvcounts[source]):
                continue
            message = self._consume(self._match(source, tag, internal=True), source)
            start = int(rdispls[source])
            expect = int(recvcounts[source])
            if message.payload.size != expect:
                raise TruncationError(
                    f"Alltoallv lane {source}->{self._rank}: got {message.payload.size}, "
                    f"expected {expect}"
                )
            rflat[start : start + expect] = message.payload

    # -- communicator management ---------------------------------------------

    def Split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """Partition by ``color``; rank order within a part follows ``key``.

        Returns ``None`` for ``color < 0`` (``MPI_UNDEFINED``).
        """
        seq = self._next_seq()
        triples = self.allgather((int(color), int(key), self._rank))
        if color < 0:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        world_ranks = tuple(self._world_ranks[r] for _, r in members)
        my_index = next(i for i, (_, r) in enumerate(members) if r == self._rank)
        new_id = ("split", self.comm_id, seq, int(color))
        return Communicator(
            self.fabric, new_id, world_ranks, my_index, lineage=self._lineage
        )

    def Dup(self) -> "Communicator":
        seq = self._next_seq()
        new_id = ("dup", self.comm_id, seq)
        return Communicator(
            self.fabric, new_id, self._world_ranks, self._rank, lineage=self._lineage
        )

    # -- internals ---------------------------------------------------------------

    def _next_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    @staticmethod
    def _coll_tag(seq: int) -> int:
        return seq

    def _post(self, dest: int, message: _Message) -> None:
        self.fabric.check_abort()
        if self.fabric.hazard:
            self.fabric.check_hazard(
                self._lineage, self._world_ranks[dest], self._world_ranks[self._rank]
            )
        if FAULTS.active and not FAULTS.on_send(
            self._world_ranks[self._rank], message
        ):
            # Dropped by the fault plan (rendezvous senders released); a
            # dropped staged payload is gone, so its charge comes back too.
            _release_budget(message)
            return
        self.fabric.post(self.comm_id, self._world_ranks[dest], message)

    def _post_rendezvous(
        self,
        buf: np.ndarray,
        dest: int,
        tag: int,
        datatype: Optional[Datatype],
        internal: bool,
    ) -> Optional[_ZeroCopyHandle]:
        """Post a zero-copy handle; returns ``None`` when ``buf`` cannot be
        shared safely (not contiguous), letting the caller fall back to the
        eager packed path."""
        arr = np.asarray(buf)
        if not arr.flags["C_CONTIGUOUS"]:
            return None
        if datatype is not None:
            # Sender-side geometry/dtype validation, exactly where pack
            # would have raised on the eager path.
            datatype.view(arr)
        handle = _ZeroCopyHandle(arr, datatype, dest_world=self._world_ranks[dest])
        self._post(dest, _Message(self._rank, tag, internal, handle))
        return handle

    def _await_handles(self, handles: Sequence[_ZeroCopyHandle]) -> None:
        """Block until every posted rendezvous lane has been drained.

        Polls with short waits so a peer failure (fabric abort) or a
        deadlock still surfaces instead of hanging forever.
        """
        if TRACER.enabled:
            with self._span("mpi.wait", lanes=len(handles)):
                return self._await_handles_impl(handles)
        return self._await_handles_impl(handles)

    def _await_handles_impl(self, handles: Sequence[_ZeroCopyHandle]) -> None:
        deadline = time.monotonic() + self.fabric.deadlock_timeout
        for handle in handles:
            while not handle.done.wait(timeout=0.05):
                self.fabric.check_abort()
                if self.fabric.hazard:
                    # A dead receiver will never drain this lane; a revoked
                    # communicator means nobody should wait on it at all.
                    self.fabric.check_hazard(
                        self._lineage,
                        handle.dest_world,
                        self._world_ranks[self._rank],
                    )
                if time.monotonic() > deadline:
                    raise DeadlineError(
                        f"rank {self._rank} blocked > {self.fabric.deadlock_timeout}s "
                        f"waiting for a zero-copy lane to drain; likely deadlock"
                    )

    def _consume(
        self, match: Callable[[_Message], bool], source: int = ANY_SOURCE
    ) -> _Message:
        deadline_s = None
        if FAULTS.active:
            deadline_s = FAULTS.on_recv(self._world_ranks[self._rank])
        source_world = None
        if source != ANY_SOURCE:
            source_world = self._world_ranks[source]
        message = self.fabric.consume(
            self.comm_id,
            self._world_ranks[self._rank],
            match,
            deadline_s=deadline_s,
            source_world=source_world,
            lineage=self._lineage,
        )
        if FAULTS.active:
            FAULTS.on_deliver(message)
        return message

    def _coll_send(self, buf: np.ndarray, dest: int, seq: int) -> None:
        payload = np.ascontiguousarray(buf).reshape(-1).copy()
        self._post(dest, _Message(self._rank, self._coll_tag(seq), True, payload))

    def _coll_recv(self, buf: np.ndarray, source: int, seq: int) -> None:
        message = self._consume(
            self._match(source, self._coll_tag(seq), internal=True), source
        )
        flat = np.asarray(buf).reshape(-1)
        if message.payload.size != flat.size:
            raise TruncationError(
                f"collective lane {source}->{self._rank}: got {message.payload.size} "
                f"elements, buffer holds {flat.size}"
            )
        flat[:] = message.payload.astype(flat.dtype, copy=False)

    def _match(self, source: int, tag: int, internal: bool) -> Callable[[_Message], bool]:
        def fn(message: _Message) -> bool:
            if message.internal != internal:
                return False
            if source != ANY_SOURCE and message.source != source:
                return False
            if tag != ANY_TAG and message.tag != tag:
                return False
            return True

        return fn


def _safe_copy(obj: Any) -> Any:
    """Isolate sender and receiver: arrays are copied, objects deep-copied.

    This mimics the serialization barrier of real MPI so tests catch
    accidental shared-state mutation between "processes".
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    try:
        return _copy.deepcopy(obj)
    except Exception:
        return obj
