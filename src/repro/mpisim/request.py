"""Nonblocking-operation handles (MPI_Request analogues).

The runtime delivers eagerly (sends buffer their payload at post time), so a
send request is complete immediately; a receive request completes when a
matching message is consumed from the mailbox.  ``wait``/``test`` mirror
``MPI_Wait``/``MPI_Test``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class Status:
    """Completion metadata, as in ``MPI_Status``."""

    source: int = -1
    tag: int = -1
    count_bytes: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count_bytes(self) -> int:
        return self.count_bytes


class Request:
    """Base request; complete when :meth:`test` returns True."""

    def test(self) -> bool:
        raise NotImplementedError

    def wait(self) -> Status:
        raise NotImplementedError

    # mpi4py-style aliases
    def Test(self) -> bool:
        return self.test()

    def Wait(self) -> Status:
        return self.wait()


class CompletedRequest(Request):
    """A request that was satisfied at post time (eager sends)."""

    def __init__(self, status: Optional[Status] = None) -> None:
        self._status = status or Status()

    def test(self) -> bool:
        return True

    def wait(self) -> Status:
        return self._status


class DeferredRequest(Request):
    """A request backed by callables supplied by the communicator."""

    def __init__(
        self,
        test_fn: Callable[[], bool],
        wait_fn: Callable[[], Status],
    ) -> None:
        self._test_fn = test_fn
        self._wait_fn = wait_fn
        self._status: Optional[Status] = None

    def test(self) -> bool:
        if self._status is not None:
            return True
        return self._test_fn()

    def wait(self) -> Status:
        if self._status is None:
            self._status = self._wait_fn()
        return self._status


def wait_all(requests: list[Request]) -> list[Status]:
    """``MPI_Waitall``: wait on every request, returning their statuses."""
    return [request.wait() for request in requests]
