"""Module entry point: ``python -m repro <artifact>``."""

import sys

from .cli import main

sys.exit(main())
