"""Parallel TIFF-stack loading for distributed volume rendering (use case 1).

Three executable strategies, mirroring the paper's Table II columns:

* :func:`load_stack_no_ddr` — every rank reads and decodes **every** slice
  its needed block touches, then crops (the traditional approach: "many
  processes loading the same image ... throwing away much of the data").
* :func:`load_stack_ddr` — slices are read exactly once, divided among the
  ranks round-robin or consecutively, and DDR redistributes the pixels to
  the near-cubic blocks DVR needs.

All strategies return the same per-rank block, so the test suite can assert
bit-equality between them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..imaging.stack import TiffStack
from ..imaging.tiff import read_tiff_info
from ..mpisim.comm import Communicator
from ..obs.tracer import TRACER
from ..utils.timing import StopwatchRegistry
from ..volren.decompose import grid_boxes
from .assignment import Assignment, StackGeometry, owned_chunks


def stack_geometry(stack: TiffStack) -> StackGeometry:
    """Derive the series geometry from the files on disk."""
    indices = stack.indices()
    if not indices:
        raise FileNotFoundError(f"no slices found in {stack.directory}")
    with open(stack.slice_path(indices[0]), "rb") as handle:
        info = read_tiff_info(handle.read())
    return StackGeometry(
        width=info.width,
        height=info.height,
        n_images=len(indices),
        bytes_per_pixel=info.dtype.itemsize,
    )


@dataclass
class LoadedBlock:
    """One rank's result: its needed block and where it sits in the volume."""

    box: Box  # paper-order (x, y, z) geometry
    data: np.ndarray  # C-order (z, y, x) array
    timers: StopwatchRegistry

    @property
    def read_s(self) -> float:
        return self.timers.total("read")

    @property
    def exchange_s(self) -> float:
        return self.timers.total("exchange")


def _crop(image: np.ndarray, box: Box) -> np.ndarray:
    """Extract a block's (x, y) footprint from one decoded slice."""
    x0, y0 = box.offset[0], box.offset[1]
    w, h = box.dims[0], box.dims[1]
    return image[y0 : y0 + h, x0 : x0 + w]


def load_stack_no_ddr(
    comm: Communicator,
    stack: TiffStack,
    grid: tuple[int, int, int],
) -> LoadedBlock:
    """Baseline loader: whole-slice decode per rank, per touched slice."""
    geometry = stack_geometry(stack)
    need = grid_boxes(geometry.volume_dims, grid)[comm.rank]
    timers = StopwatchRegistry()

    z0, depth = need.offset[2], need.dims[2]
    planes = []
    with TRACER.span("phase.read", strategy="no_ddr", slices=depth), timers.time("read"):
        for z in range(z0, z0 + depth):
            image = stack.read_slice(z)  # full decode, mostly discarded
            planes.append(np.ascontiguousarray(_crop(image, need)))
    data = np.stack(planes)
    return LoadedBlock(box=need, data=data, timers=timers)


def load_stack_ddr(
    comm: Communicator,
    stack: TiffStack,
    grid: tuple[int, int, int],
    strategy: Assignment = Assignment.CONSECUTIVE,
    backend: str = "alltoallw",
) -> LoadedBlock:
    """DDR loader: balanced single-read of each slice, then redistribution."""
    geometry = stack_geometry(stack)
    need = grid_boxes(geometry.volume_dims, grid)[comm.rank]
    chunks = owned_chunks(geometry, comm.size, comm.rank, strategy)
    timers = StopwatchRegistry()

    dtype = None
    buffers: list[np.ndarray] = []
    with TRACER.span("phase.read", strategy=strategy.name.lower()), timers.time("read"):
        for chunk in chunks:
            z0, depth = chunk.offset[2], chunk.dims[2]
            planes = [stack.read_slice(z) for z in range(z0, z0 + depth)]
            block = np.stack(planes)
            dtype = block.dtype
            buffers.append(block)
    if dtype is None:  # rank owns no slices (more ranks than images)
        probe = stack.read_slice(0)
        dtype = probe.dtype

    with TRACER.span("phase.redistribute", backend=backend), timers.time("exchange"):
        red = Redistributor(comm, ndims=3, dtype=dtype, backend=backend)
        red.setup(own=chunks, need=need)
        data = np.empty(need.np_shape(), dtype=dtype)
        red.exchange(buffers, data)

    return LoadedBlock(box=need, data=data, timers=timers)
