"""Parallel TIFF-stack -> bricked-volume conversion via DDR.

The paper's introduction: "Our research could be integrated into such
packages [ParaView] to enable on-the-fly conversion from data formats that
are laid out in an otherwise incompatible fashion."  This module is that
converter: readers share the slice-decode work evenly, DDR redistributes
pixels from whole slices to brick-aligned slabs, and every rank writes its
own bricks (disjoint fixed offsets, safe concurrently).
"""

from __future__ import annotations

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..imaging.bricks import BrickedVolume
from ..imaging.stack import TiffStack
from ..mpisim.comm import Communicator
from ..utils.timing import StopwatchRegistry
from ..volren.decompose import split_extent
from .assignment import Assignment, owned_chunks
from .stackload import stack_geometry


def brick_layer_ranges(n_layers: int, nprocs: int, rank: int) -> tuple[int, int]:
    """Contiguous block of brick z-layers assigned to ``rank`` (may be empty
    when there are more ranks than layers)."""
    if n_layers >= nprocs:
        offset, size = split_extent(n_layers, nprocs)[rank]
        return offset, offset + size
    if rank < n_layers:
        return rank, rank + 1
    return 0, 0


def convert_stack_to_bricks(
    comm: Communicator,
    stack: TiffStack,
    out_path,
    brick: int = 32,
    strategy: Assignment = Assignment.CONSECUTIVE,
) -> StopwatchRegistry:
    """Collective conversion; returns this rank's phase timings.

    Each rank's *need* is a slab of whole brick z-layers, so after one DDR
    exchange it can cut bricks locally and write them at their fixed file
    offsets.
    """
    geometry = stack_geometry(stack)
    timers = StopwatchRegistry()

    # Rank 0 allocates the output file; everyone else waits.
    if comm.rank == 0:
        with timers.time("allocate"):
            probe = stack.read_slice(stack.indices()[0])
            BrickedVolume.create(
                out_path, geometry.volume_dims, probe.dtype, brick=brick
            )
    comm.Barrier()
    volume = BrickedVolume(out_path)
    header = volume.header

    # Balanced slice reads (the DDR producer side).
    chunks = owned_chunks(geometry, comm.size, comm.rank, strategy)
    buffers: list[np.ndarray] = []
    with timers.time("read"):
        for chunk in chunks:
            z0, depth = chunk.offset[2], chunk.dims[2]
            buffers.append(np.stack([stack.read_slice(z) for z in range(z0, z0 + depth)]))

    # Needs: whole brick z-layers, contiguous per rank (consumer side).
    gx, gy, gz = header.grid
    layer_lo, layer_hi = brick_layer_ranges(gz, comm.size, comm.rank)
    z_lo = layer_lo * brick
    z_hi = min(layer_hi * brick, geometry.n_images)
    if z_hi > z_lo:
        need = Box((0, 0, z_lo), (geometry.width, geometry.height, z_hi - z_lo))
    else:
        need = None

    with timers.time("exchange"):
        red = Redistributor(comm, ndims=3, dtype=header.dtype)
        red.setup(own=chunks, need=need)
        slab = red.gather_need(buffers)

    with timers.time("write"):
        if slab is not None:
            for k in range(layer_lo, layer_hi):
                for j in range(gy):
                    for i in range(gx):
                        box = header.brick_box(i, j, k)
                        x0, y0, z0 = box.offset
                        w, h, d = box.dims
                        data = slab[
                            z0 - z_lo : z0 - z_lo + d, y0 : y0 + h, x0 : x0 + w
                        ]
                        volume.write_brick(i, j, k, np.ascontiguousarray(data))
    comm.Barrier()  # conversion is complete for everyone
    return timers
