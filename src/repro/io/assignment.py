"""File-to-process assignment strategies for parallel stack loading.

The paper's TIFF use case (§IV-A) evaluates two ways of dividing the image
series among readers:

* **round-robin** — rank ``r`` reads images ``r, r+P, r+2P, ...``; every
  image is its own DDR chunk, so the number of redistribution rounds equals
  ``ceil(n_images / P)``.
* **consecutive** — rank ``r`` reads a contiguous block of images, which
  collapses into a *single* DDR chunk and a single ``Alltoallw`` round.

Both return the owned chunks in the 3D volume coordinate system ``[x, y, z]``
with ``z`` the slice index, ready to feed ``DDR_SetupDataMapping``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.box import Box
from ..volren.decompose import split_extent


class Assignment(enum.Enum):
    """Reader assignment strategy (the two DDR columns of Table II)."""

    ROUND_ROBIN = "round_robin"
    CONSECUTIVE = "consecutive"
    BLOCK_CYCLIC = "block_cyclic"  # extension: middle ground for the ablation


@dataclass(frozen=True)
class StackGeometry:
    """Shape of one image series: ``n_images`` slices of ``width x height``."""

    width: int
    height: int
    n_images: int
    bytes_per_pixel: int

    @property
    def image_bytes(self) -> int:
        return self.width * self.height * self.bytes_per_pixel

    @property
    def total_bytes(self) -> int:
        return self.image_bytes * self.n_images

    @property
    def volume_dims(self) -> tuple[int, int, int]:
        return (self.width, self.height, self.n_images)

    def image_box(self, z: int) -> Box:
        if not (0 <= z < self.n_images):
            raise ValueError(f"image index {z} out of range [0, {self.n_images})")
        return Box((0, 0, z), (self.width, self.height, 1))


#: The paper's artificial benchmark data set: 4096 images, 4096x2048,
#: 32-bit grayscale — 128 GiB total.
PAPER_STACK = StackGeometry(width=4096, height=2048, n_images=4096, bytes_per_pixel=4)


def assigned_images(
    geometry: StackGeometry, nprocs: int, rank: int, strategy: Assignment,
    block: int = 8,
) -> list[int]:
    """Which slice indices ``rank`` reads from disk."""
    if not (0 <= rank < nprocs):
        raise ValueError(f"rank {rank} out of range for {nprocs} processes")
    n = geometry.n_images
    if strategy is Assignment.ROUND_ROBIN:
        return list(range(rank, n, nprocs))
    if strategy is Assignment.CONSECUTIVE:
        if n < nprocs:
            raise ValueError(f"{n} images cannot feed {nprocs} readers consecutively")
        offset, size = split_extent(n, nprocs)[rank]
        return list(range(offset, offset + size))
    if strategy is Assignment.BLOCK_CYCLIC:
        out = []
        for start in range(rank * block, n, nprocs * block):
            out.extend(range(start, min(start + block, n)))
        return out
    raise ValueError(f"unknown strategy {strategy!r}")


def owned_chunks(
    geometry: StackGeometry, nprocs: int, rank: int, strategy: Assignment,
    block: int = 8,
) -> list[Box]:
    """The DDR chunk list for ``rank``: maximal runs of consecutive slices.

    Round-robin yields one single-slice chunk per image (many rounds);
    consecutive yields one thick chunk (one round) — the trade-off Table III
    quantifies.
    """
    images = assigned_images(geometry, nprocs, rank, strategy, block)
    chunks: list[Box] = []
    run_start: int | None = None
    prev = None
    for z in images + [None]:  # sentinel flushes the last run
        if run_start is None:
            run_start = z
        elif z is None or z != prev + 1:
            length = prev - run_start + 1
            chunks.append(Box((0, 0, run_start), (geometry.width, geometry.height, length)))
            run_start = z
        prev = z
    return chunks


def all_owned_chunks(
    geometry: StackGeometry, nprocs: int, strategy: Assignment, block: int = 8
) -> list[list[Box]]:
    """Owned chunks for every rank (planner input)."""
    return [owned_chunks(geometry, nprocs, r, strategy, block) for r in range(nprocs)]


def reads_per_process_no_ddr(geometry: StackGeometry, need: Box) -> int:
    """Without DDR, a rank must read and decode *every* image its needed
    block touches (paper: whole-image decode even for a few pixels)."""
    z0 = need.offset[2]
    z1 = need.offset[2] + need.dims[2]
    return z1 - z0
