"""Parallel I/O strategies for the TIFF use case."""

from .assignment import (
    Assignment,
    PAPER_STACK,
    StackGeometry,
    all_owned_chunks,
    assigned_images,
    owned_chunks,
    reads_per_process_no_ddr,
)
from .convert import brick_layer_ranges, convert_stack_to_bricks
from .stackload import LoadedBlock, load_stack_ddr, load_stack_no_ddr, stack_geometry

__all__ = [
    "Assignment",
    "LoadedBlock",
    "PAPER_STACK",
    "StackGeometry",
    "all_owned_chunks",
    "assigned_images",
    "brick_layer_ranges",
    "convert_stack_to_bricks",
    "load_stack_ddr",
    "load_stack_no_ddr",
    "owned_chunks",
    "reads_per_process_no_ddr",
    "stack_geometry",
]
