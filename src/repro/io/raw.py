"""Raw binary field output — the paper's uncompressed baseline for Table IV.

"Raw data was saved to disk directly from a 4-byte float array."
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


def write_raw(path, field: np.ndarray) -> int:
    """Dump a float32 field as flat bytes; returns bytes written."""
    data = np.ascontiguousarray(field, dtype=np.float32)
    payload = data.tobytes()
    Path(path).write_bytes(payload)
    return len(payload)


def read_raw(path, shape: tuple[int, ...]) -> np.ndarray:
    """Read a flat float32 dump back into ``shape``."""
    data = np.fromfile(path, dtype=np.float32)
    expected = int(np.prod(shape))
    if data.size != expected:
        raise ValueError(f"{path} holds {data.size} floats, expected {expected}")
    return data.reshape(shape)


def raw_frame_bytes(nx: int, ny: int, bytes_per_value: int = 4) -> int:
    """Size of one uncompressed frame (one variable of interest)."""
    return nx * ny * bytes_per_value
