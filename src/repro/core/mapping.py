"""``DDR_SetupDataMapping`` internals: the collective mapping step.

Each rank declares only its *local* picture — the chunks it owns and the
single chunk it needs (paper §III-B, Table I).  The mapping step is a
collective: ranks allgather their declarations, every rank runs the same
deterministic planner (:func:`repro.core.plan.compute_global_plan`), and
each keeps its own :class:`LocalMapping` — a first-class, ready-to-execute
handle (schedule IR + buffer cache + staging pool).

Mapping lifecycle: a :class:`~repro.core.api.Redistributor` may hold
several live mappings at once (different layouts over the same
communicator) and may cheaply re-``setup()`` on a new geometry (malleable
reconfiguration).  Re-attaching a mapping to a descriptor *invalidates*
the mapping it replaces: its caches are dropped and further exchanges
through it raise :class:`StaleMappingError` instead of silently moving
data with a superseded layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..mpisim.comm import Communicator
from ..utils.arrays import StagingPool
from .box import Box
from .descriptor import DataDescriptor
from .packing import BufferCache
from .plan import GlobalPlan, RankPlan, compute_global_plan
from .schedule import (
    ExchangeSchedule,
    RoundSchedule,
    build_schedule,
    round_max_partners,
    round_peak_stats,
)
from .validate import (
    check_receives_within_domain,
    check_send_coverage,
    infer_domain,
)


class StaleMappingError(RuntimeError):
    """An exchange was attempted through a mapping that has been superseded."""


@dataclass
class LocalMapping:
    """One rank's ready-to-execute schedule — a first-class handle.

    Holds everything an execution engine needs (the schedule IR with
    prebuilt datatypes, the descriptor's element dtype/components) plus the
    per-mapping caches: :class:`~repro.core.packing.BufferCache` (skips
    buffer revalidation on repeat calls with the same arrays) and
    :class:`~repro.utils.arrays.StagingPool` (reused output arrays for
    ``gather_need(reuse_out=True)``).  Keying the caches per mapping is
    what lets several mappings coexist on one ``Redistributor`` without
    thrashing each other.
    """

    rank: int
    nprocs: int
    nrounds: int
    plan: RankPlan
    schedule: ExchangeSchedule
    domain: Optional[Box]
    dtype: np.dtype = np.dtype(np.float32)
    components: int = 1
    buffer_cache: BufferCache = field(default_factory=BufferCache)
    pool: StagingPool = field(default_factory=StagingPool)
    _stale: bool = field(default=False, init=False, repr=False)
    #: Monotonic exchange counter; advances in lockstep on every rank
    #: (``execute`` is collective), giving each exchange a unique tag epoch
    #: so a message lost from one exchange can never satisfy a receive of a
    #: later one (see ``ExchangeEngine._round_tag``).
    _tag_epoch: int = field(default=0, init=False, repr=False)

    def next_tag_epoch(self) -> int:
        epoch = self._tag_epoch
        self._tag_epoch = epoch + 1
        return epoch

    @property
    def own_chunks(self) -> list[Box]:
        return self.plan.own_chunks

    @property
    def need(self) -> Optional[Box]:
        return self.plan.need

    @property
    def rounds(self) -> list[RoundSchedule]:
        return self.schedule.rounds

    @property
    def stale(self) -> bool:
        return self._stale

    def invalidate(self) -> None:
        """Mark superseded: drop the caches, make further use raise."""
        self._stale = True
        self.buffer_cache.clear()
        self.pool.clear()

    def check_usable(self, comm: Communicator) -> None:
        """Engine preamble: reject stale handles and mismatched worlds."""
        if self._stale:
            raise StaleMappingError(
                f"mapping (rank {self.rank}/{self.nprocs}) was invalidated by a "
                "later setup(); re-run setup() or keep an independent mapping "
                "via Redistributor.new_mapping()"
            )
        if comm.size != self.nprocs or comm.rank != self.rank:
            raise ValueError(
                f"communicator (rank {comm.rank}/{comm.size}) does not match the "
                f"mapping (rank {self.rank}/{self.nprocs})"
            )


def plan_from_declarations(
    owns: Sequence[Sequence[Box]],
    needs: Sequence[Optional[Box]],
    descriptor: DataDescriptor,
    validate: bool = True,
) -> tuple[GlobalPlan, Optional[Box]]:
    """Validate global declarations and compute the full plan (pure)."""
    domain: Optional[Box]
    if validate:
        domain = check_send_coverage(owns)
        check_receives_within_domain(needs, domain)
    else:
        domain = infer_domain(owns)
    plan = compute_global_plan(
        owns, needs, descriptor.element_size, ndims=descriptor.ndims
    )
    return plan, domain


def local_mapping_from_global(
    global_plan: GlobalPlan,
    domain: Optional[Box],
    rank: int,
    descriptor: DataDescriptor,
) -> LocalMapping:
    plan = global_plan.rank_plans[rank]
    schedule = build_schedule(
        plan,
        global_plan.nprocs,
        global_plan.nrounds,
        descriptor.element_size,
        mpi_type=descriptor.mpi_type,
        components=descriptor.components,
        round_max_partners=round_max_partners(global_plan),
        round_peak_bytes=round_peak_stats(global_plan),
    )
    return LocalMapping(
        rank=rank,
        nprocs=global_plan.nprocs,
        nrounds=global_plan.nrounds,
        plan=plan,
        schedule=schedule,
        domain=domain,
        dtype=descriptor.dtype,
        components=descriptor.components,
        pool=StagingPool(rank=rank),
    )


def attach_mapping(descriptor: DataDescriptor, mapping: LocalMapping) -> None:
    """Install ``mapping`` as the descriptor's active plan slot.

    The C-style API addresses exchanges through the descriptor, so the slot
    holds exactly one live mapping: whatever it previously held is
    invalidated (stale use raises, caches are released).
    """
    previous = descriptor.plan
    if isinstance(previous, LocalMapping) and previous is not mapping:
        previous.invalidate()
    descriptor.plan = mapping


def setup_data_mapping(
    comm: Communicator,
    descriptor: DataDescriptor,
    own_chunks: Sequence[Box],
    need: Optional[Box],
    validate: bool = True,
    attach: bool = True,
) -> LocalMapping:
    """Collective: exchange declarations, plan, and build the mapping.

    Must be called by every rank of ``comm`` with its own declarations.
    With ``attach=True`` (the default, mirroring the paper's
    opaque-descriptor lifecycle) the mapping is stored on
    ``descriptor.plan`` and any previously attached mapping is invalidated;
    ``attach=False`` returns an independent handle and leaves the
    descriptor untouched — the building block for concurrent mappings.
    """
    if comm.size != descriptor.nprocs:
        raise ValueError(
            f"descriptor was created for {descriptor.nprocs} processes but the "
            f"communicator has {comm.size}"
        )
    for box in own_chunks:
        if box.ndim != descriptor.ndims:
            raise ValueError(
                f"chunk {box} has {box.ndim} dims, descriptor declares {descriptor.ndims}"
            )
    if need is not None and need.ndim != descriptor.ndims:
        raise ValueError(
            f"need {need} has {need.ndim} dims, descriptor declares {descriptor.ndims}"
        )

    declaration = (
        [(box.offset, box.dims) for box in own_chunks],
        (need.offset, need.dims) if need is not None else None,
    )
    gathered = comm.allgather(declaration)

    owns: list[list[Box]] = []
    needs: list[Optional[Box]] = []
    for own_decl, need_decl in gathered:
        owns.append([Box(offset, dims) for offset, dims in own_decl])
        needs.append(Box(*need_decl) if need_decl is not None else None)

    global_plan, domain = plan_from_declarations(owns, needs, descriptor, validate)
    local = local_mapping_from_global(global_plan, domain, comm.rank, descriptor)
    if attach:
        attach_mapping(descriptor, local)
    return local
