"""``DDR_SetupDataMapping`` internals: the collective mapping step.

Each rank declares only its *local* picture — the chunks it owns and the
single chunk it needs (paper §III-B, Table I).  The mapping step is a
collective: ranks allgather their declarations, every rank runs the same
deterministic planner (:func:`repro.core.plan.compute_global_plan`), and
each keeps its own :class:`LocalMapping` (plan slice + prebuilt datatypes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..mpisim.comm import Communicator
from .box import Box
from .descriptor import DataDescriptor
from .packing import BufferCache, RoundTypes, build_round_types
from .plan import GlobalPlan, RankPlan, compute_global_plan
from .validate import (
    check_receives_within_domain,
    check_send_coverage,
    infer_domain,
)


@dataclass
class LocalMapping:
    """One rank's ready-to-execute schedule, stored on the descriptor."""

    rank: int
    nprocs: int
    nrounds: int
    plan: RankPlan
    rounds: list[RoundTypes]
    domain: Optional[Box]
    # Last validated buffer set; lets repeated reorganize calls on the same
    # arrays skip per-call geometry checks (and every new allocation).
    buffer_cache: BufferCache = field(default_factory=BufferCache)

    @property
    def own_chunks(self) -> list[Box]:
        return self.plan.own_chunks

    @property
    def need(self) -> Optional[Box]:
        return self.plan.need


def plan_from_declarations(
    owns: Sequence[Sequence[Box]],
    needs: Sequence[Optional[Box]],
    descriptor: DataDescriptor,
    validate: bool = True,
) -> tuple[GlobalPlan, Optional[Box]]:
    """Validate global declarations and compute the full plan (pure)."""
    domain: Optional[Box]
    if validate:
        domain = check_send_coverage(owns)
        check_receives_within_domain(needs, domain)
    else:
        domain = infer_domain(owns)
    plan = compute_global_plan(
        owns, needs, descriptor.element_size, ndims=descriptor.ndims
    )
    return plan, domain


def local_mapping_from_global(
    global_plan: GlobalPlan,
    domain: Optional[Box],
    rank: int,
    descriptor: DataDescriptor,
) -> LocalMapping:
    plan = global_plan.rank_plans[rank]
    rounds = build_round_types(
        plan,
        global_plan.nprocs,
        global_plan.nrounds,
        descriptor.mpi_type,
        descriptor.components,
    )
    return LocalMapping(
        rank=rank,
        nprocs=global_plan.nprocs,
        nrounds=global_plan.nrounds,
        plan=plan,
        rounds=rounds,
        domain=domain,
    )


def setup_data_mapping(
    comm: Communicator,
    descriptor: DataDescriptor,
    own_chunks: Sequence[Box],
    need: Optional[Box],
    validate: bool = True,
) -> LocalMapping:
    """Collective: exchange declarations, plan, and attach the result.

    Must be called by every rank of ``comm`` with its own declarations.
    The computed :class:`LocalMapping` is stored on ``descriptor.plan``,
    mirroring the paper's opaque-descriptor lifecycle, and also returned.
    """
    if comm.size != descriptor.nprocs:
        raise ValueError(
            f"descriptor was created for {descriptor.nprocs} processes but the "
            f"communicator has {comm.size}"
        )
    for box in own_chunks:
        if box.ndim != descriptor.ndims:
            raise ValueError(
                f"chunk {box} has {box.ndim} dims, descriptor declares {descriptor.ndims}"
            )
    if need is not None and need.ndim != descriptor.ndims:
        raise ValueError(
            f"need {need} has {need.ndim} dims, descriptor declares {descriptor.ndims}"
        )

    declaration = (
        [(box.offset, box.dims) for box in own_chunks],
        (need.offset, need.dims) if need is not None else None,
    )
    gathered = comm.allgather(declaration)

    owns: list[list[Box]] = []
    needs: list[Optional[Box]] = []
    for own_decl, need_decl in gathered:
        owns.append([Box(offset, dims) for offset, dims in own_decl])
        needs.append(Box(*need_decl) if need_decl is not None else None)

    global_plan, domain = plan_from_declarations(owns, needs, descriptor, validate)
    local = local_mapping_from_global(global_plan, domain, comm.rank, descriptor)
    descriptor.plan = local
    return local
