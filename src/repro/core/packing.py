"""Datatype construction: plan entries -> MPI subarray types (paper §III-C).

The paper: "custom subarray types are needed to describe multidimensional
subsets of data", hence ``MPI_Alltoallw`` rather than ``MPI_Alltoallv``.
Each :class:`~repro.core.plan.SendEntry` becomes a subarray type *within the
owned chunk's buffer*; each :class:`~repro.core.plan.RecvEntry` becomes a
subarray type *within the need buffer* (the lowering itself lives in
:func:`repro.core.schedule.build_schedule`).  This module also owns the
buffer-validation layer shared by every execution engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpisim.datatypes import NamedType, SubarrayType
from .box import Box
from .plan import RankPlan


def subarray_for(
    container: Box, region: Box, mpi_type: NamedType, components: int = 1
) -> SubarrayType:
    """Subarray type selecting ``region`` out of a buffer shaped like ``container``.

    Both boxes are in global paper-order coordinates; the result is expressed
    in the C-order coordinates of the container's NumPy buffer.  With
    ``components > 1`` each cell is an interleaved record of that many base
    values, stored as a trailing (fastest) axis of the buffer.
    """
    sizes = container.np_shape()
    subsizes = region.np_shape()
    starts = region.np_starts_within(container)
    if components > 1:
        sizes = sizes + (components,)
        subsizes = subsizes + (components,)
        starts = starts + (0,)
    return SubarrayType(mpi_type, sizes=sizes, subsizes=subsizes, starts=starts)


class BufferCache:
    """Remembers the last buffer set :func:`check_buffers` accepted for a plan.

    The paper's repeated-call pattern (``DDR_ReorganizeData`` once per
    simulation frame, same buffers every time) revalidates identical
    geometry on every call.  The cache keys each buffer by
    ``(id, dtype, shape, strides)`` and holds strong references to the
    validated arrays, so a matching signature proves the same live objects
    with unchanged geometry — ``id`` alone would be unsafe because CPython
    recycles addresses of freed objects.  Only ndarray inputs are cacheable;
    anything else (lists, scalars) falls through to a full revalidation.
    """

    __slots__ = ("_signature", "_own", "_need", "resident_bytes", "peak_bytes")

    def __init__(self) -> None:
        self._signature: Optional[tuple] = None
        self._own: list[np.ndarray] = []
        self._need: Optional[np.ndarray] = None
        #: Bytes of user buffers the cache currently holds strong references
        #: to, and the high-water mark across the cache's lifetime — the
        #: observability pair the serving hub exports as gauges.
        self.resident_bytes: int = 0
        self.peak_bytes: int = 0

    @staticmethod
    def _buffer_key(buf) -> Optional[tuple]:
        if not isinstance(buf, np.ndarray):
            return None
        return (id(buf), buf.dtype, buf.shape, buf.strides)

    def signature(self, data_own, data_need) -> Optional[tuple]:
        """Cache key for a buffer set, or ``None`` when not cacheable."""
        keys: list[tuple] = []
        for buf in data_own:
            key = self._buffer_key(buf)
            if key is None:
                return None
            keys.append(key)
        if data_need is None:
            keys.append(("no-need",))
        else:
            key = self._buffer_key(data_need)
            if key is None:
                return None
            keys.append(("need",) + key)
        return tuple(keys)

    def lookup(
        self, signature: Optional[tuple]
    ) -> Optional[tuple[list[np.ndarray], Optional[np.ndarray]]]:
        if signature is None or signature != self._signature:
            return None
        return self._own, self._need

    def store(
        self,
        signature: Optional[tuple],
        own: list[np.ndarray],
        need: Optional[np.ndarray],
    ) -> None:
        if signature is None:
            return
        self._signature = signature
        self._own = own
        self._need = need
        self.resident_bytes = sum(buf.nbytes for buf in own) + (
            need.nbytes if need is not None else 0
        )
        if self.resident_bytes > self.peak_bytes:
            self.peak_bytes = self.resident_bytes

    def clear(self) -> None:
        """Drop the cached buffer set (e.g. when its mapping is invalidated)."""
        self._signature = None
        self._own = []
        self._need = None
        self.resident_bytes = 0


def check_buffers_cached(
    plan: RankPlan,
    dtype: np.dtype,
    data_own: list[np.ndarray],
    data_need: Optional[np.ndarray],
    components: int,
    cache: BufferCache,
) -> tuple[list[np.ndarray], Optional[np.ndarray]]:
    """:func:`check_buffers`, skipping revalidation on a cache hit."""
    signature = cache.signature(data_own, data_need)
    cached = cache.lookup(signature)
    if cached is not None:
        return cached
    own, need = check_buffers(plan, dtype, data_own, data_need, components)
    cache.store(signature, own, need)
    return own, need


def check_buffers(
    plan: RankPlan,
    dtype: np.dtype,
    data_own: list[np.ndarray],
    data_need: Optional[np.ndarray],
    components: int = 1,
) -> tuple[list[np.ndarray], Optional[np.ndarray]]:
    """Validate user buffers against the plan geometry; returns normalised views.

    Owned buffers may be passed with the natural C-order shape of their chunk
    (with a trailing component axis when ``components > 1``) or flat; either
    way they must be C-contiguous and hold exactly ``volume * components``
    base values.
    """
    if len(data_own) != len(plan.own_chunks):
        raise ValueError(
            f"rank {plan.rank}: {len(data_own)} owned buffers for "
            f"{len(plan.own_chunks)} declared chunks"
        )
    own_norm: list[np.ndarray] = []
    for index, (chunk, buf) in enumerate(zip(plan.own_chunks, data_own)):
        arr = np.asarray(buf)
        if arr.dtype != dtype:
            raise ValueError(
                f"rank {plan.rank} chunk {index}: buffer dtype {arr.dtype} != descriptor {dtype}"
            )
        if arr.size != chunk.volume() * components:
            raise ValueError(
                f"rank {plan.rank} chunk {index}: buffer has {arr.size} values, "
                f"chunk {chunk} needs {chunk.volume()} x {components}"
            )
        if not arr.flags["C_CONTIGUOUS"]:
            raise ValueError(f"rank {plan.rank} chunk {index}: buffer must be C-contiguous")
        own_norm.append(arr)

    need_norm: Optional[np.ndarray] = None
    if plan.need is not None and not plan.need.is_empty():
        if data_need is None:
            raise ValueError(f"rank {plan.rank} declared a need but passed no need buffer")
        arr = np.asarray(data_need)
        if arr.dtype != dtype:
            raise ValueError(
                f"rank {plan.rank}: need buffer dtype {arr.dtype} != descriptor {dtype}"
            )
        if arr.size != plan.need.volume() * components:
            raise ValueError(
                f"rank {plan.rank}: need buffer has {arr.size} values, "
                f"need {plan.need} needs {plan.need.volume()} x {components}"
            )
        if not arr.flags["C_CONTIGUOUS"]:
            raise ValueError(f"rank {plan.rank}: need buffer must be C-contiguous")
        need_norm = arr
    return own_norm, need_norm
