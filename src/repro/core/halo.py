"""Ghost-zone exchange built on DDR's overlapping-receive semantics.

Paper §III-B: "multiple processes can receive overlapping data".  That is
exactly a halo exchange: every rank owns one box of a tiled domain and
*needs* that box inflated by ``halo`` cells per axis — so neighboring
requests overlap, and one ``DDR_ReorganizeData`` call refreshes all ghosts.
This module packages the pattern, a capability the paper mentions but does
not demonstrate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..mpisim.comm import Communicator
from ..utils.arrays import StagingPool
from .api import Redistributor
from .box import Box


def inflate_box(box: Box, halo: int | Sequence[int], domain: Box) -> Box:
    """Grow ``box`` by ``halo`` cells per axis, clipped to ``domain``."""
    if isinstance(halo, int):
        widths = (halo,) * box.ndim
    else:
        widths = tuple(int(h) for h in halo)
    if len(widths) != box.ndim:
        raise ValueError(f"halo has {len(widths)} widths for a {box.ndim}-D box")
    if any(w < 0 for w in widths):
        raise ValueError(f"negative halo width in {widths}")
    lo = tuple(
        max(o - w, d) for o, w, d in zip(box.offset, widths, domain.offset)
    )
    hi = tuple(
        min(e + w, d) for e, w, d in zip(box.end, widths, domain.end)
    )
    return Box(lo, tuple(h - l for l, h in zip(lo, hi)))


class GhostExchanger:
    """Repeated halo refresh for one fixed decomposition.

    >>> ghosts = GhostExchanger(comm, ndims=2, dtype=np.float64)
    >>> ghosts.setup(own=my_box, halo=1, domain=domain)
    >>> padded = ghosts.exchange(interior)   # interior + up-to-date ghosts
    >>> core = ghosts.interior_view(padded)  # writable view of my cells

    The mapping is computed once (collectively); ``exchange`` may be called
    every time step — DDR's dynamic-data property.

    With ``reuse_buffer=True`` every ``exchange`` returns the *same* padded
    array (refilled), so a steady-state time loop allocates nothing; use it
    only when the previous generation's padded block is no longer needed.
    ``transport`` is forwarded to the underlying :class:`Redistributor`.
    """

    def __init__(
        self,
        comm: Communicator,
        ndims: int,
        dtype,
        transport: Optional[str] = None,
        reuse_buffer: bool = False,
    ) -> None:
        self.comm = comm
        self._red = Redistributor(comm, ndims=ndims, dtype=dtype, transport=transport)
        self.reuse_buffer = reuse_buffer
        self._pool = StagingPool()
        self.own: Optional[Box] = None
        self.padded: Optional[Box] = None

    def setup(self, own: Box, halo: int | Sequence[int], domain: Box) -> Box:
        """Collective.  ``own`` boxes must tile ``domain`` exactly.

        Returns the padded (inflated) box this rank will receive.
        """
        if not domain.contains_box(own):
            raise ValueError(f"{own} is not inside the domain {domain}")
        self.own = own
        self.padded = inflate_box(own, halo, domain)
        self._red.setup(own=[own], need=self.padded)
        return self.padded

    def exchange(self, interior: np.ndarray, fill: float | int = 0) -> np.ndarray:
        """Redistribute everyone's interiors; returns this rank's padded block."""
        if self.own is None or self.padded is None:
            raise RuntimeError("setup() has not been called")
        interior = np.asarray(interior)
        if interior.shape != self.own.np_shape():
            raise ValueError(
                f"interior shape {interior.shape} != owned box shape {self.own.np_shape()}"
            )
        dtype = self._red.descriptor.dtype
        if self.reuse_buffer:
            out = self._pool.take_filled(self.padded.np_shape(), dtype, fill)
        else:
            out = np.full(self.padded.np_shape(), fill, dtype=dtype)
        self._red.exchange([np.ascontiguousarray(interior)], out)
        return out

    def interior_view(self, padded: np.ndarray) -> np.ndarray:
        """View of the owned region inside a padded block (no copy)."""
        if self.own is None or self.padded is None:
            raise RuntimeError("setup() has not been called")
        starts = self.own.np_starts_within(self.padded)
        slices = tuple(
            slice(s, s + d) for s, d in zip(starts, self.own.np_shape())
        )
        return padded[slices]
