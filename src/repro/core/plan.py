"""Communication planning: geometric overlap -> per-round exchange schedule.

This is the heart of ``DDR_SetupDataMapping`` (paper §III-B/C).  Given every
rank's owned chunks and needed chunk, the planner intersects each owned
chunk with each need and lays the resulting transfers out in *rounds*: round
``c`` moves data out of every rank's chunk slot ``c``, so the number of
``Alltoallw`` calls equals the maximum number of chunks owned by any rank —
exactly the scheduling rule the paper states and quantifies in Table III.

The planner is pure (no communication), so the full-scale experiments (4096
chunks x 216 ranks) can be scheduled without instantiating any runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .box import Box, intersect_many


@dataclass(frozen=True)
class SendEntry:
    """One outgoing transfer: a sub-box of an owned chunk bound for ``dest``."""

    dest: int
    chunk_index: int
    chunk: Box
    overlap: Box  # global coordinates; contained in both chunk and dest's need

    @property
    def round(self) -> int:
        """Round ``c`` drains chunk slot ``c`` (paper §III-C scheduling rule),
        so an entry's round *is* its chunk index."""
        return self.chunk_index


@dataclass(frozen=True)
class RecvEntry:
    """One incoming transfer: a sub-box of my need arriving from ``source``."""

    round: int
    source: int
    overlap: Box  # global coordinates; contained in my need


@dataclass
class RankPlan:
    """Everything one rank must do across all rounds."""

    rank: int
    own_chunks: list[Box]
    need: Optional[Box]
    sends: list[SendEntry] = field(default_factory=list)
    recvs: list[RecvEntry] = field(default_factory=list)
    # Lazy per-round index over sends/recvs.  The schedule builders and the
    # network models ask for every round of every rank; a linear rescan per
    # query made that O(rounds x entries).  The index is rebuilt whenever the
    # entry counts change, which covers the append-then-query lifecycle of
    # plan construction.
    _round_index: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _rounds_indexed(
        self,
    ) -> tuple[dict[int, list[SendEntry]], dict[int, list[RecvEntry]]]:
        key = (len(self.sends), len(self.recvs))
        cached = self._round_index
        if cached is None or cached[0] != key:
            sends: dict[int, list[SendEntry]] = {}
            for entry in self.sends:
                sends.setdefault(entry.round, []).append(entry)
            recvs: dict[int, list[RecvEntry]] = {}
            for entry in self.recvs:
                recvs.setdefault(entry.round, []).append(entry)
            cached = (key, sends, recvs)
            self._round_index = cached
        return cached[1], cached[2]

    def sends_in_round(self, round_index: int) -> list[SendEntry]:
        return self._rounds_indexed()[0].get(round_index, [])

    def recvs_in_round(self, round_index: int) -> list[RecvEntry]:
        return self._rounds_indexed()[1].get(round_index, [])

    def bytes_sent(self, element_size: int, exclude_self: bool = True) -> int:
        return sum(
            s.overlap.volume() * element_size
            for s in self.sends
            if not (exclude_self and s.dest == self.rank)
        )

    def bytes_received(self, element_size: int, exclude_self: bool = True) -> int:
        return sum(
            r.overlap.volume() * element_size
            for r in self.recvs
            if not (exclude_self and r.source == self.rank)
        )


@dataclass
class GlobalPlan:
    """The complete schedule for all ranks, plus Table-III-style statistics."""

    nprocs: int
    ndims: int
    element_size: int
    rank_plans: list[RankPlan]
    nrounds: int

    # -- statistics (drive Table III and the performance model) -------------

    def total_bytes_moved(self, exclude_self: bool = True) -> int:
        return sum(p.bytes_sent(self.element_size, exclude_self) for p in self.rank_plans)

    def mean_bytes_per_rank_per_round(self, exclude_self: bool = True) -> float:
        """Average payload each process puts on the network per ``Alltoallw``.

        This is the "Data Size (MB)" column of the paper's Table III (after
        converting to MiB).
        """
        if self.nrounds == 0:
            return 0.0
        return self.total_bytes_moved(exclude_self) / (self.nprocs * self.nrounds)

    def mean_bytes_per_chunk_round(self, exclude_self: bool = True) -> float:
        """Average payload per *occupied* chunk slot.

        With uneven chunk counts (e.g. 4096 images round-robin over 125
        ranks) some ranks sit out the last round;
        :meth:`mean_bytes_per_rank_per_round` averages over all P x rounds
        slots while this method averages only over slots that actually hold
        a chunk — the convention behind the paper's Table III round-robin
        column (total bytes / 4096 images).
        """
        occupied = sum(len(p.own_chunks) for p in self.rank_plans)
        if occupied == 0:
            return 0.0
        return self.total_bytes_moved(exclude_self) / occupied

    def max_bytes_per_rank_per_round(self, exclude_self: bool = True) -> int:
        worst = 0
        for plan in self.rank_plans:
            per_round: dict[int, int] = {}
            for s in plan.sends:
                if exclude_self and s.dest == plan.rank:
                    continue
                per_round[s.round] = per_round.get(s.round, 0) + s.overlap.volume()
            if per_round:
                worst = max(worst, max(per_round.values()) * self.element_size)
        return worst

    def traffic_matrix(self, round_index: Optional[int] = None) -> np.ndarray:
        """Bytes moved ``[src, dst]`` (one round, or summed over all rounds)."""
        matrix = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        for plan in self.rank_plans:
            for s in plan.sends:
                if round_index is None or s.round == round_index:
                    matrix[plan.rank, s.dest] += s.overlap.volume() * self.element_size
        return matrix

    def partners_per_rank(self) -> list[int]:
        """Number of distinct remote ranks each rank exchanges data with.

        Drives the paper's future-work observation that sparse patterns
        would benefit from direct sends instead of ``Alltoallw``.
        """
        out = []
        for plan in self.rank_plans:
            partners = {s.dest for s in plan.sends if s.dest != plan.rank}
            partners |= {r.source for r in plan.recvs if r.source != plan.rank}
            out.append(len(partners))
        return out


def compute_global_plan(
    owns: Sequence[Sequence[Box]],
    needs: Sequence[Optional[Box]],
    element_size: int,
    ndims: Optional[int] = None,
) -> GlobalPlan:
    """Plan the exchange for all ranks.

    Parameters
    ----------
    owns:
        ``owns[r]`` is the ordered list of chunks rank ``r`` holds before
        redistribution.  Chunk slot order defines round membership.
    needs:
        ``needs[r]`` is the single contiguous box rank ``r`` requires after
        redistribution (``None`` or an empty box means it receives nothing).
    element_size:
        Bytes per element, for the byte statistics.
    """
    nprocs = len(owns)
    if len(needs) != nprocs:
        raise ValueError(f"owns has {nprocs} ranks but needs has {len(needs)}")

    ref_ndims = ndims
    for chunks in owns:
        for box in chunks:
            ref_ndims = ref_ndims or box.ndim
            if box.ndim != ref_ndims:
                raise ValueError("all chunks must share one dimensionality")
    for need in needs:
        if need is not None:
            ref_ndims = ref_ndims or need.ndim
            if need.ndim != ref_ndims:
                raise ValueError("needs must match the chunks' dimensionality")
    if ref_ndims is None:
        raise ValueError("cannot infer dimensionality from an empty problem")

    plans = [
        RankPlan(rank=r, own_chunks=list(owns[r]), need=needs[r]) for r in range(nprocs)
    ]
    nrounds = max((len(chunks) for chunks in owns), default=0)

    # Vectorised geometry: all needs as (N, ndim) arrays, one pass per chunk.
    active = [r for r in range(nprocs) if needs[r] is not None and not needs[r].is_empty()]
    if active:
        need_offsets = np.array([needs[r].offset for r in active], dtype=np.int64)
        need_dims = np.array([needs[r].dims for r in active], dtype=np.int64)

    for owner in range(nprocs):
        for chunk_index, chunk in enumerate(owns[owner]):
            if chunk.is_empty() or not active:
                continue
            mask, lo, extent = intersect_many(chunk, need_offsets, need_dims)
            for hit in np.nonzero(mask)[0]:
                dest = active[int(hit)]
                overlap = Box(tuple(lo[hit]), tuple(extent[hit]))
                plans[owner].sends.append(
                    SendEntry(dest, chunk_index, chunk, overlap)
                )
                plans[dest].recvs.append(RecvEntry(chunk_index, owner, overlap))

    # Deterministic ordering makes plans comparable across runs and backends.
    for plan in plans:
        plan.sends.sort(key=lambda s: (s.round, s.dest))
        plan.recvs.sort(key=lambda r: (r.round, r.source))

    return GlobalPlan(
        nprocs=nprocs,
        ndims=ref_ndims,
        element_size=element_size,
        rank_plans=plans,
        nrounds=nrounds,
    )
