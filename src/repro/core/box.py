"""N-dimensional axis-aligned boxes in the paper's coordinate convention.

DDR describes every chunk of data by *dimensions* and *offsets* into the
overall domain, ordered ``[i]`` (1D), ``[i, j]`` (2D) or ``[i, j, k]`` (3D)
where ``i`` is the **fastest-varying (contiguous) axis** — the convention of
the paper's Algorithm 1 / Table I.  NumPy C-order arrays use the reverse
axis order, so :meth:`Box.np_shape` exists for the boundary crossings.

Boxes are half-open: a box with offset ``o`` and dims ``d`` covers indices
``o <= x < o + d`` per axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Box:
    """Axis-aligned half-open box: ``offset[a] <= x_a < offset[a] + dims[a]``."""

    offset: tuple[int, ...]
    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        offset = tuple(int(v) for v in self.offset)
        dims = tuple(int(v) for v in self.dims)
        if len(offset) != len(dims):
            raise ValueError(f"offset rank {len(offset)} != dims rank {len(dims)}")
        if len(dims) == 0:
            raise ValueError("boxes must have at least one dimension")
        if any(d < 0 for d in dims):
            raise ValueError(f"negative dims {dims}")
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "dims", dims)

    # -- basic geometry -----------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def end(self) -> tuple[int, ...]:
        """Exclusive upper corner per axis."""
        return tuple(o + d for o, d in zip(self.offset, self.dims))

    def volume(self) -> int:
        total = 1
        for d in self.dims:
            total *= d
        return total

    def is_empty(self) -> bool:
        return any(d == 0 for d in self.dims)

    def contains_point(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise ValueError("point rank mismatch")
        return all(o <= p < e for o, p, e in zip(self.offset, point, self.end))

    def contains_box(self, other: "Box") -> bool:
        self._check_rank(other)
        if other.is_empty():
            return True
        return all(
            so <= oo and oe <= se
            for so, se, oo, oe in zip(self.offset, self.end, other.offset, other.end)
        )

    def intersect(self, other: "Box") -> Optional["Box"]:
        """The overlap box, or ``None`` when the boxes are disjoint."""
        self._check_rank(other)
        lo = tuple(max(a, b) for a, b in zip(self.offset, other.offset))
        hi = tuple(min(a, b) for a, b in zip(self.end, other.end))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo, tuple(h - l for l, h in zip(lo, hi)))

    def overlaps(self, other: "Box") -> bool:
        return self.intersect(other) is not None

    def translate(self, delta: Sequence[int]) -> "Box":
        if len(delta) != self.ndim:
            raise ValueError("delta rank mismatch")
        return Box(tuple(o + d for o, d in zip(self.offset, delta)), self.dims)

    def relative_to(self, origin: "Box") -> "Box":
        """This box expressed in coordinates local to ``origin``'s corner."""
        self._check_rank(origin)
        return self.translate(tuple(-o for o in origin.offset))

    def union_bounds(self, other: "Box") -> "Box":
        """Smallest box containing both (bounding box, not set union)."""
        self._check_rank(other)
        lo = tuple(min(a, b) for a, b in zip(self.offset, other.offset))
        hi = tuple(max(a, b) for a, b in zip(self.end, other.end))
        return Box(lo, tuple(h - l for l, h in zip(lo, hi)))

    # -- NumPy boundary ------------------------------------------------------

    def np_shape(self) -> tuple[int, ...]:
        """C-order array shape for a buffer holding exactly this box."""
        return tuple(reversed(self.dims))

    def np_starts_within(self, container: "Box") -> tuple[int, ...]:
        """C-order start indices of this box inside ``container``'s buffer."""
        if not container.contains_box(self):
            raise ValueError(f"{self} not contained in {container}")
        return tuple(reversed([o - co for o, co in zip(self.offset, container.offset)]))

    def cells(self) -> Iterator[tuple[int, ...]]:
        """Iterate every integer cell (paper axis order).  Test-sized boxes only."""
        ranges = [range(o, o + d) for o, d in zip(self.offset, self.dims)]

        def rec(prefix: tuple[int, ...], remaining: list[range]) -> Iterator[tuple[int, ...]]:
            if not remaining:
                yield prefix
                return
            for v in remaining[0]:
                yield from rec(prefix + (v,), remaining[1:])

        return rec((), ranges)

    def _check_rank(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise ValueError(f"rank mismatch: {self.ndim} vs {other.ndim}")

    def __str__(self) -> str:
        return f"Box(offset={list(self.offset)}, dims={list(self.dims)})"


def intersect_many(
    box: Box, offsets: np.ndarray, dims: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised ``box.intersect`` against ``N`` boxes.

    ``offsets``/``dims`` are ``(N, ndim)`` integer arrays.  Returns
    ``(mask, lo, extent)`` where ``mask[n]`` says whether box ``n`` overlaps
    and ``lo``/``extent`` give the overlap geometry (only valid where
    ``mask``).  Used on the hot path of full-scale mapping computation
    (e.g. 4096 chunks x 216 needs for the paper's Table III).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    dims = np.asarray(dims, dtype=np.int64)
    if offsets.ndim != 2 or offsets.shape != dims.shape or offsets.shape[1] != box.ndim:
        raise ValueError("offsets/dims must be (N, ndim) arrays matching the box rank")
    lo = np.maximum(offsets, np.asarray(box.offset, dtype=np.int64))
    hi = np.minimum(offsets + dims, np.asarray(box.end, dtype=np.int64))
    extent = hi - lo
    mask = (extent > 0).all(axis=1)
    return mask, lo, extent


def boxes_from_flat(
    nchunks: int, ndims: int, dims_flat: Sequence[int], offsets_flat: Sequence[int]
) -> list[Box]:
    """Decode the paper's flat parameter arrays (P4/P5 of Table I) into boxes.

    ``dims_flat`` and ``offsets_flat`` hold ``nchunks * ndims`` values, chunk
    by chunk, each chunk's values in ``[i, j, k]`` order.
    """
    dims_list = [int(v) for v in np.asarray(dims_flat).reshape(-1)]
    offsets_list = [int(v) for v in np.asarray(offsets_flat).reshape(-1)]
    expected = nchunks * ndims
    if len(dims_list) != expected:
        raise ValueError(
            f"dims array has {len(dims_list)} values, expected {nchunks} chunks x {ndims} dims"
        )
    if len(offsets_list) != expected:
        raise ValueError(
            f"offsets array has {len(offsets_list)} values, "
            f"expected {nchunks} chunks x {ndims} dims"
        )
    boxes = []
    for c in range(nchunks):
        dims = tuple(dims_list[c * ndims : (c + 1) * ndims])
        offset = tuple(offsets_list[c * ndims : (c + 1) * ndims])
        boxes.append(Box(offset, dims))
    return boxes
