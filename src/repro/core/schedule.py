"""The exchange-schedule IR: one rank's per-round communication lanes.

The planner (:mod:`repro.core.plan`) produces geometric send/recv entries;
the executors need per-peer datatypes and the network models need per-round
byte volumes and sparsity statistics.  Previously each consumer re-derived
its own view by rescanning the plan.  This module builds the shared
intermediate representation exactly once:

``RankPlan`` -> :func:`build_schedule` -> :class:`ExchangeSchedule`
(one :class:`RoundSchedule` per round, each a list of :class:`Lane`\\ s)

and every execution engine (:mod:`repro.core.engine`) and both network cost
models (:mod:`repro.netmodel.analytic`, :mod:`repro.netmodel.desnet`)
consume it identically.  A lane is (peer, byte volume, optional datatype);
schedules built for cost modeling omit the datatypes, so the full-scale
216-rank predictions never materialise subarray types.

The IR also carries the *global* per-round sparsity statistic
(``max_partners``: the busiest rank's partner count that round) that drives
the paper's §V future-work idea, made real by ``AutoEngine``: dense rounds
go through the ``Alltoallw`` collective, sparse rounds through direct
sends.  Because the statistic comes from the deterministic global plan,
every rank derives the same per-round decision without communicating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..mpisim.datatypes import NamedType, SubarrayType
from .box import Box
from .packing import subarray_for
from .plan import GlobalPlan, RankPlan

#: A round whose busiest rank talks to at least this fraction of the other
#: ranks is considered dense: the O(P) collective amortises better than
#: per-message handshakes.  Below it, direct sends win (paper §V).
AUTO_DENSITY_THRESHOLD = 0.5

#: Staging transports (packed payload copies / pooled shm segments) whose
#: round peak is modeled as every send payload plus every in-flight recv
#: payload; ``zerocopy`` stages nothing and peaks at the self-copy temp.
STAGED_TRANSPORTS = ("packed", "shm")

#: Pieces resident at once per lowered sub-step of the bounded engine: the
#: eagerly staged outgoing piece, the in-flight incoming piece, and the
#: pack/unpack temporaries on either side of them.
PIECE_INFLIGHT = 4

#: Lower bound on the bounded engine's piece size.  Below this, per-message
#: latency dominates any memory saved, and the piece count per lane stays
#: sane even under absurd budgets.
MIN_CHUNK_BYTES = 64 * 1024

#: Piece size the bounded engine lowers with when no budget is installed
#: (running it explicitly is then a pure lane-chunking ablation).
DEFAULT_BOUNDED_CHUNK_BYTES = 4 * 1024 * 1024


def chunk_bytes_for(limit_bytes: int) -> int:
    """Piece size the bounded engine lowers with under ``limit_bytes``.

    Targets a lowered peak near half the limit (``PIECE_INFLIGHT`` resident
    pieces, times two for slack against estimate error), floored at
    :data:`MIN_CHUNK_BYTES`.  A pure function of the *static* limit — both
    ends of every lane derive the same piece decomposition from it with no
    communication.
    """
    return max(MIN_CHUNK_BYTES, int(limit_bytes) // (2 * PIECE_INFLIGHT))


def collective_preferred(
    max_partners: int, nprocs: int, threshold: float = AUTO_DENSITY_THRESHOLD
) -> bool:
    """The auto-selection rule: dense rounds -> collective, sparse -> direct.

    ``max_partners`` must be a *global* per-round statistic (identical on
    every rank) so that all ranks agree on the wire protocol for the round.
    """
    if nprocs <= 1:
        return False
    return max_partners >= threshold * (nprocs - 1)


@dataclass(frozen=True)
class Lane:
    """One point-to-point transfer of one round.

    ``datatype`` selects the moved cells out of the owning buffer (send
    lanes: the chunk buffer; recv lanes: the need buffer).  It is ``None``
    for schedules built purely for cost modeling.  ``container``/``region``
    keep the geometry the datatype was built from, so the bounded engine
    can re-slice the lane into budget-sized pieces without replanning.
    """

    peer: int
    nbytes: int
    datatype: Optional[SubarrayType] = None
    container: Optional[Box] = None
    region: Optional[Box] = None


@dataclass
class RoundSchedule:
    """Everything one rank does in one exchange round.

    ``sends``/``recvs`` hold only *remote* lanes, ordered by peer; the
    self-transfer (data a rank keeps across the redistribution) is split
    out because every engine handles it as a local copy, never a message.
    """

    index: int
    chunk_index: Optional[int]  # which owned buffer feeds this round (None: no send)
    nprocs: int
    sends: list[Lane] = field(default_factory=list)
    recvs: list[Lane] = field(default_factory=list)
    self_send: Optional[Lane] = None
    self_recv: Optional[Lane] = None
    #: Busiest rank's partner count this round, across the *whole* plan
    #: (0 when the schedule was built without global context).
    max_partners: int = 0
    #: Busiest rank's estimated staged-transport peak this round, across the
    #: *whole* plan (0 without global context).  Like ``max_partners`` this
    #: is identical on every rank, so budget-driven lowering decisions need
    #: no communication.
    max_round_bytes: int = 0
    #: Geometry context for peak estimates and bounded lowering.
    element_size: int = 1
    components: int = 1
    mpi_type: Optional[NamedType] = field(default=None, repr=False)
    # Dense per-peer tables for the Alltoallw collective, built lazily and
    # cached: the repeated-exchange hot path must not rebuild them per call.
    _sendtypes: Optional[list[Optional[SubarrayType]]] = field(
        default=None, init=False, repr=False
    )
    _recvtypes: Optional[list[Optional[SubarrayType]]] = field(
        default=None, init=False, repr=False
    )
    # Piece datatypes the bounded engine slices lanes into, keyed by
    # (container, region, chunk_bytes); cached for the same reason as the
    # dense tables — repeated exchanges must not rebuild subarray types.
    _piece_cache: dict = field(default_factory=dict, init=False, repr=False)

    # -- sparsity statistics -------------------------------------------------

    @property
    def partners(self) -> int:
        """Distinct remote ranks this rank exchanges data with this round."""
        return len({lane.peer for lane in self.sends} | {lane.peer for lane in self.recvs})

    @property
    def density(self) -> float:
        """Partner count as a fraction of the possible ``P - 1`` peers."""
        if self.nprocs <= 1:
            return 0.0
        return self.partners / (self.nprocs - 1)

    @property
    def bytes_out(self) -> int:
        """Bytes this rank puts on the network this round (self excluded)."""
        return sum(lane.nbytes for lane in self.sends)

    @property
    def bytes_in(self) -> int:
        return sum(lane.nbytes for lane in self.recvs)

    @property
    def self_bytes(self) -> int:
        return self.self_send.nbytes if self.self_send is not None else 0

    @property
    def message_count(self) -> int:
        """Messages a direct-send engine posts for this round."""
        return len(self.sends)

    # -- peak-memory accounting ----------------------------------------------

    @property
    def largest_lane_bytes(self) -> int:
        """Largest single transfer this round (self-copy included)."""
        largest = max(
            (lane.nbytes for lane in self.sends), default=0
        )
        largest = max(largest, max((lane.nbytes for lane in self.recvs), default=0))
        return max(largest, self.self_bytes)

    def peak_bytes(self, transport: str = "packed") -> int:
        """Estimated per-rank staging high-water mark for this round.

        Staged transports (``packed``, ``shm``) copy every outgoing lane
        into a dense payload and hold every incoming payload until it is
        unpacked, so the worst instant is all sends staged while all recvs
        have arrived unconsumed — plus the self-transfer's packed payload,
        which exists once (posted to and drained from this rank's own
        mailbox).  ``zerocopy`` stages nothing; only the self-copy may
        materialise a pack temporary.  User buffers are never counted:
        the budget governs library staging, not the data itself.
        """
        if transport not in STAGED_TRANSPORTS:
            return self.self_bytes
        return self.bytes_out + self.bytes_in + self.self_bytes

    def lowered_peak_bytes(
        self, chunk_bytes: int, transport: str = "packed"
    ) -> int:
        """Estimated staging peak when the bounded engine runs this round
        in pieces of at most ``chunk_bytes``.

        At any lowered sub-step only :data:`PIECE_INFLIGHT` pieces are
        resident, so the peak is capped near ``PIECE_INFLIGHT * piece``
        where ``piece`` cannot exceed the largest lane.  Monotone
        non-decreasing in ``chunk_bytes`` and never above the unlowered
        :meth:`peak_bytes` — shrinking the budget's derived chunk can only
        shrink the footprint.
        """
        full = self.peak_bytes(transport)
        if chunk_bytes <= 0:
            return full
        largest = self.largest_lane_bytes
        if largest == 0:
            return 0
        return min(full, PIECE_INFLIGHT * min(int(chunk_bytes), largest))

    # -- dense tables for the collective engine ------------------------------

    def sendtypes(self) -> list[Optional[SubarrayType]]:
        """Per-peer send datatype table (slot ``d`` = lane to rank ``d``)."""
        if self._sendtypes is None:
            table: list[Optional[SubarrayType]] = [None] * self.nprocs
            for lane in self.sends:
                table[lane.peer] = lane.datatype
            if self.self_send is not None:
                table[self.self_send.peer] = self.self_send.datatype
            self._sendtypes = table
        return self._sendtypes

    def recvtypes(self) -> list[Optional[SubarrayType]]:
        """Per-peer recv datatype table (slot ``s`` = lane from rank ``s``)."""
        if self._recvtypes is None:
            table: list[Optional[SubarrayType]] = [None] * self.nprocs
            for lane in self.recvs:
                table[lane.peer] = lane.datatype
            if self.self_recv is not None:
                table[self.self_recv.peer] = self.self_recv.datatype
            self._recvtypes = table
        return self._recvtypes


@dataclass
class ExchangeSchedule:
    """One rank's complete, ready-to-execute exchange schedule."""

    rank: int
    nprocs: int
    nrounds: int
    element_size: int
    rounds: list[RoundSchedule]

    @property
    def max_partners(self) -> int:
        return max((r.partners for r in self.rounds), default=0)

    @property
    def total_bytes_out(self) -> int:
        return sum(r.bytes_out for r in self.rounds)

    @property
    def total_self_bytes(self) -> int:
        return sum(r.self_bytes for r in self.rounds)

    @property
    def message_count(self) -> int:
        return sum(r.message_count for r in self.rounds)

    def peak_bytes(self, transport: str = "packed") -> int:
        """Estimated per-rank staging peak across the exchange: rounds are
        sequential (each is drained before the next begins), so the
        schedule peak is the worst round, not the sum."""
        return max((r.peak_bytes(transport) for r in self.rounds), default=0)

    def engine_choices(
        self, threshold: float = AUTO_DENSITY_THRESHOLD
    ) -> list[str]:
        """Per-round engine the auto rule selects (``alltoallw`` / ``p2p``)."""
        return [
            "alltoallw"
            if collective_preferred(r.max_partners, self.nprocs, threshold)
            else "p2p"
            for r in self.rounds
        ]


def build_schedule(
    plan: RankPlan,
    nprocs: int,
    nrounds: int,
    element_size: int,
    mpi_type: Optional[NamedType] = None,
    components: int = 1,
    round_max_partners: Optional[Sequence[int]] = None,
    round_peak_bytes: Optional[Sequence[int]] = None,
) -> ExchangeSchedule:
    """Lower one rank's plan slice into the exchange IR.

    With ``mpi_type`` given, every lane carries a prebuilt subarray datatype
    (the execution form — the paper's "setup once, reorganize repeatedly"
    property hinges on this happening exactly once).  Without it the lanes
    carry byte volumes only (the cost-model form).  ``round_max_partners``
    and ``round_peak_bytes`` inject the global per-round sparsity and
    peak-staging statistics; pass them whenever the full
    :class:`~repro.core.plan.GlobalPlan` is in hand so ``AutoEngine``, the
    memory budget, and the cost models share the same selection inputs.
    """
    rounds: list[RoundSchedule] = []
    for round_index in range(nrounds):
        chunk_index: Optional[int] = (
            round_index if round_index < len(plan.own_chunks) else None
        )
        rnd = RoundSchedule(
            index=round_index,
            chunk_index=chunk_index,
            nprocs=nprocs,
            max_partners=(
                int(round_max_partners[round_index])
                if round_max_partners is not None
                else 0
            ),
            max_round_bytes=(
                int(round_peak_bytes[round_index])
                if round_peak_bytes is not None
                else 0
            ),
            element_size=element_size,
            components=components,
            mpi_type=mpi_type,
        )
        for entry in plan.sends_in_round(round_index):
            datatype = (
                subarray_for(entry.chunk, entry.overlap, mpi_type, components)
                if mpi_type is not None
                else None
            )
            lane = Lane(
                entry.dest,
                entry.overlap.volume() * element_size,
                datatype,
                container=entry.chunk,
                region=entry.overlap,
            )
            if entry.dest == plan.rank:
                rnd.self_send = lane
            else:
                rnd.sends.append(lane)
        for entry in plan.recvs_in_round(round_index):
            if mpi_type is not None:
                assert plan.need is not None
                datatype = subarray_for(plan.need, entry.overlap, mpi_type, components)
            else:
                datatype = None
            lane = Lane(
                entry.source,
                entry.overlap.volume() * element_size,
                datatype,
                container=plan.need,
                region=entry.overlap,
            )
            if entry.source == plan.rank:
                rnd.self_recv = lane
            else:
                rnd.recvs.append(lane)
        rounds.append(rnd)
    return ExchangeSchedule(
        rank=plan.rank,
        nprocs=nprocs,
        nrounds=nrounds,
        element_size=element_size,
        rounds=rounds,
    )


def round_max_partners(global_plan: GlobalPlan) -> list[int]:
    """Per round, the busiest rank's remote-partner count (plan-wide).

    This is the statistic the auto-selection rule keys on: it is derived
    from the deterministic global plan, so every rank computes the same
    values and the per-round engine choice needs no extra communication.
    """
    out: list[int] = []
    for round_index in range(global_plan.nrounds):
        worst = 0
        for plan in global_plan.rank_plans:
            peers = {
                s.dest for s in plan.sends_in_round(round_index) if s.dest != plan.rank
            }
            peers |= {
                r.source
                for r in plan.recvs_in_round(round_index)
                if r.source != plan.rank
            }
            worst = max(worst, len(peers))
        out.append(worst)
    return out


def round_peak_stats(global_plan: GlobalPlan) -> list[int]:
    """Per round, the busiest rank's estimated staged-transport peak.

    The staged model from :meth:`RoundSchedule.peak_bytes` — all send
    payloads plus all in-flight recv payloads plus the self payload once —
    evaluated for every rank from the deterministic global plan, worst rank
    kept.  Every rank computes identical values, so budget comparisons
    (round fits / round must lower, and with what piece size) are wire
    decisions all ranks agree on without communicating.
    """
    element_size = global_plan.element_size
    out: list[int] = []
    for round_index in range(global_plan.nrounds):
        worst = 0
        for plan in global_plan.rank_plans:
            total = 0
            for entry in plan.sends_in_round(round_index):
                total += entry.overlap.volume() * element_size
            for entry in plan.recvs_in_round(round_index):
                if entry.source != plan.rank:
                    total += entry.overlap.volume() * element_size
            worst = max(worst, total)
        out.append(worst)
    return out


def global_schedules(global_plan: GlobalPlan) -> list[ExchangeSchedule]:
    """Datatype-free schedules for every rank (the cost-model view).

    The network models iterate lanes instead of rescanning raw plan
    entries; building all ranks here is one linear pass over the plan.
    """
    stats = round_max_partners(global_plan)
    peaks = round_peak_stats(global_plan)
    return [
        build_schedule(
            plan,
            global_plan.nprocs,
            global_plan.nrounds,
            global_plan.element_size,
            round_max_partners=stats,
            round_peak_bytes=peaks,
        )
        for plan in global_plan.rank_plans
    ]
