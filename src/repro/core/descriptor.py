"""The DDR data descriptor (``DDR_NewDataDescriptor``, paper §III-A).

A descriptor records what *kind* of data is being redistributed: the number
of processes, whether the array is 1D/2D/3D, and the element type/size.
After ``DDR_SetupDataMapping`` it also carries the computed communication
plan — the paper returns an opaque pointer that accumulates this state, and
we mirror that lifecycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..mpisim.datatypes import NamedType, named_type_for


class DataLayout(enum.IntEnum):
    """Array dimensionality (the paper's ``DATA_TYPE_1D/2D/3D`` constants)."""

    DATA_TYPE_1D = 1
    DATA_TYPE_2D = 2
    DATA_TYPE_3D = 3

    @property
    def ndims(self) -> int:
        return int(self.value)


#: Module-level aliases mirroring the C API's constants.
DATA_TYPE_1D = DataLayout.DATA_TYPE_1D
DATA_TYPE_2D = DataLayout.DATA_TYPE_2D
DATA_TYPE_3D = DataLayout.DATA_TYPE_3D


@dataclass
class DataDescriptor:
    """Opaque state object returned by :func:`repro.core.api.DDR_NewDataDescriptor`.

    Attributes
    ----------
    nprocs:
        Number of processes in the application.
    layout:
        1D / 2D / 3D (:class:`DataLayout`).
    mpi_type:
        Element datatype as a runtime :class:`NamedType` (``MPI_FLOAT`` etc.).
    element_size:
        Per-element byte size, as the caller declared it.  May be a
        *multiple* of the base type's size: an element is then an
        interleaved record of ``components`` consecutive values (e.g. an
        RGB pixel, or a (ux, uy) velocity pair) that always travels
        together — the "array interleaving" layout the paper's related
        work (§II-A) discusses.
    plan:
        Filled in by ``DDR_SetupDataMapping``; ``None`` until then.
    """

    nprocs: int
    layout: DataLayout
    mpi_type: NamedType
    element_size: int
    plan: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        self.layout = DataLayout(self.layout)
        base = self.mpi_type.dtype.itemsize
        if self.element_size < base or self.element_size % base:
            raise ValueError(
                f"declared element size {self.element_size} is not a positive "
                f"multiple of {self.mpi_type.name} ({base} bytes)"
            )

    @classmethod
    def create(
        cls,
        nprocs: int,
        layout: DataLayout | int,
        dtype: np.dtype | type | str | NamedType,
        element_size: Optional[int] = None,
        components: int = 1,
    ) -> "DataDescriptor":
        """Pythonic constructor accepting a NumPy dtype or a NamedType.

        ``components`` declares interleaved values per element (mutually
        exclusive with passing an explicit ``element_size``).
        """
        mpi_type = dtype if isinstance(dtype, NamedType) else named_type_for(dtype)
        if components < 1:
            raise ValueError(f"components must be >= 1, got {components}")
        if element_size is None:
            element_size = mpi_type.dtype.itemsize * components
        elif components != 1:
            raise ValueError("pass either element_size or components, not both")
        return cls(nprocs, DataLayout(layout), mpi_type, element_size)

    @property
    def ndims(self) -> int:
        return self.layout.ndims

    @property
    def dtype(self) -> np.dtype:
        return self.mpi_type.dtype

    @property
    def components(self) -> int:
        """Interleaved base values per element (1 for scalar elements)."""
        return self.element_size // self.mpi_type.dtype.itemsize

    @property
    def is_mapped(self) -> bool:
        return self.plan is not None
