"""Direct point-to-point backend (the paper's stated future work, §V).

"By looking at how an application sets up the data mapping, we could
determine if data only needs to be redistributed to a few neighboring
processes and use direct send and receive calls to improve efficiency."

This backend replays the identical plan with ``Isend``/``Recv`` pairs —
only actual partners communicate, so the message count per rank is the
partner count rather than ``P`` per round.  Results are bit-identical to
the ``Alltoallw`` backend (property-tested), which makes the backend an
honest ablation for the benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..mpisim.comm import TRANSPORT_ZEROCOPY, Communicator
from ..mpisim.request import Request, wait_all
from .descriptor import DataDescriptor
from .mapping import LocalMapping
from .packing import check_buffers_cached
from .reorganize import _normalise_own


def reorganize_data_p2p(
    comm: Communicator,
    descriptor: DataDescriptor,
    data_own: Union[np.ndarray, Sequence[np.ndarray], None],
    data_need: Optional[np.ndarray],
    transport: Optional[str] = None,
) -> None:
    """Drop-in replacement for :func:`repro.core.reorganize.reorganize_data`.

    Per round: post one ``Isend`` per send entry (tag = round index), then
    receive exactly the expected messages.  Each (source, round) pair
    carries at most one message because a source has at most one chunk per
    round, so tags disambiguate fully.  On the zero-copy transport the
    sends are rendezvous (the receiver copies straight out of ``sendbuf``),
    so the posted requests are waited at the end of the round; packed sends
    complete eagerly.
    """
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError(
            "DDR_SetupDataMapping must be called before DDR_ReorganizeData"
        )
    own = _normalise_own(data_own)
    own, need = check_buffers_cached(
        mapping.plan,
        descriptor.dtype,
        own,
        data_need,
        descriptor.components,
        mapping.buffer_cache,
    )
    zero_copy = comm.resolve_transport(transport) == TRANSPORT_ZEROCOPY

    for round_types in mapping.rounds:
        round_index = round_types.round
        sendbuf: Optional[np.ndarray] = None
        if round_types.chunk_index is not None:
            sendbuf = own[round_types.chunk_index]

        # Self-transfer without touching the mailbox.
        self_send = round_types.sendtypes[comm.rank]
        self_recv = round_types.recvtypes[comm.rank]
        if self_send is not None and self_send.size_elements() > 0:
            assert sendbuf is not None and need is not None and self_recv is not None
            if zero_copy and not np.may_share_memory(sendbuf, need):
                self_send.copy_into(sendbuf, need, self_recv)
            else:
                self_recv.unpack(need, self_send.pack(sendbuf))

        requests: list[Request] = []
        for dest, datatype in enumerate(round_types.sendtypes):
            if dest == comm.rank or datatype is None or datatype.size_elements() == 0:
                continue
            assert sendbuf is not None
            requests.append(
                comm.Isend(
                    sendbuf, dest, tag=round_index, datatype=datatype,
                    rendezvous=zero_copy,
                )
            )

        for source, datatype in enumerate(round_types.recvtypes):
            if source == comm.rank or datatype is None or datatype.size_elements() == 0:
                continue
            assert need is not None
            comm.Recv(need, source, tag=round_index, datatype=datatype)

        # Rendezvous sends hold the buffer live until the peer has copied;
        # the round boundary is where that guarantee must be settled.
        wait_all(requests)


def message_count_p2p(descriptor: DataDescriptor) -> int:
    """Messages this rank sends under the p2p backend (for the ablation bench)."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError("mapping not set up")
    return sum(1 for s in mapping.plan.sends if s.dest != mapping.rank)
