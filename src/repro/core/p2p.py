"""Direct point-to-point backend (the paper's stated future work, §V).

"By looking at how an application sets up the data mapping, we could
determine if data only needs to be redistributed to a few neighboring
processes and use direct send and receive calls to improve efficiency."

This backend replays the identical schedule IR with ``Irecv``/``Isend``
pairs — only actual partners communicate, so the message count per rank is
the partner count rather than ``P`` per round.  Results are bit-identical
to the ``Alltoallw`` backend (property-tested), which makes the backend an
honest ablation for the benchmarks.  The execution logic lives in
:class:`repro.core.engine.P2PEngine`; this module is the C-style entry
point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpisim.comm import Communicator
from .descriptor import DataDescriptor
from .engine import Buffers, get_engine, mapping_from_descriptor
from .mapping import LocalMapping


def reorganize_data_p2p(
    comm: Communicator,
    descriptor: DataDescriptor,
    data_own: Buffers,
    data_need: Optional[np.ndarray],
    transport: Optional[str] = None,
) -> None:
    """Drop-in replacement for :func:`repro.core.reorganize.reorganize_data`.

    Per round: post every expected ``Irecv``, then one ``Isend`` per send
    lane (tag = round index), then wait.  Each (source, round) pair carries
    at most one message because a source has at most one chunk per round, so
    tags disambiguate fully.  On the zero-copy transport the sends are
    rendezvous (the receiver copies straight out of ``sendbuf``), so the
    posted requests are waited at the end of the round; packed sends
    complete eagerly.
    """
    mapping = mapping_from_descriptor(descriptor)
    get_engine("p2p").execute(comm, mapping, data_own, data_need, transport)


def message_count_p2p(descriptor: DataDescriptor) -> int:
    """Messages this rank sends under the p2p backend (for the ablation bench)."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError("mapping not set up")
    return mapping.schedule.message_count
