"""The DDR public API.

Two layers:

1. The paper's three C-style calls, parameter-for-parameter (Algorithm 1 /
   Table I): :func:`DDR_NewDataDescriptor`, :func:`DDR_SetupDataMapping`,
   :func:`DDR_ReorganizeData`.  The only deviation from the C signatures is
   an explicit ``comm`` argument where the C library implicitly used
   ``MPI_COMM_WORLD`` — unavoidable in an in-process runtime that may host
   several worlds at once.

2. :class:`Redistributor`, the idiomatic wrapper the rest of this repository
   builds on (boxes instead of flat arrays, backend selection, reuse across
   time steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from ..faults.policy import ReliabilityPolicy
from ..mpisim.comm import (
    TRANSPORT_PACKED,
    TRANSPORT_SHM,
    TRANSPORT_ZEROCOPY,
    Communicator,
)
from ..mpisim.datatypes import NamedType
from .box import Box, boxes_from_flat
from .descriptor import DataDescriptor, DataLayout
from .engine import ExchangeProgress, default_backend, get_engine
from .mapping import LocalMapping, setup_data_mapping
from .reorganize import reorganize_data


def DDR_NewDataDescriptor(
    nprocs: int,
    layout: DataLayout | int,
    mpi_type: NamedType | np.dtype | type | str,
    element_size: Optional[int] = None,
) -> DataDescriptor:
    """Create the opaque descriptor (paper §III-A).

    Parameters mirror the C call: process count, ``DATA_TYPE_{1,2,3}D``,
    the element MPI type, and the element byte size (``sizeof(float)``).
    """
    return DataDescriptor.create(nprocs, layout, mpi_type, element_size)


def DDR_SetupDataMapping(
    comm: Communicator,
    rank: int,
    nprocs: int,
    chunks_own: int,
    dims_own: Sequence[int],
    offsets_own: Sequence[int],
    dims_need: Sequence[int],
    offsets_need: Sequence[int],
    descriptor: DataDescriptor,
    validate: bool = True,
) -> None:
    """Collective mapping setup (paper §III-B, Table I parameters P1-P8).

    ``dims_own``/``offsets_own`` are the flat per-chunk arrays of Algorithm 1
    (``chunks_own * ndims`` values each, fastest axis first);
    ``dims_need``/``offsets_need`` describe the single needed chunk.
    """
    if rank != comm.rank:
        raise ValueError(f"rank argument {rank} does not match communicator rank {comm.rank}")
    if nprocs != comm.size:
        raise ValueError(
            f"nprocs argument {nprocs} does not match communicator size {comm.size}"
        )
    ndims = descriptor.ndims
    own_boxes = boxes_from_flat(chunks_own, ndims, dims_own, offsets_own)
    need_dims = [int(v) for v in np.asarray(dims_need).reshape(-1)]
    need_offsets = [int(v) for v in np.asarray(offsets_need).reshape(-1)]
    if len(need_dims) != ndims or len(need_offsets) != ndims:
        raise ValueError(
            f"need dims/offsets must have {ndims} values, got "
            f"{len(need_dims)}/{len(need_offsets)}"
        )
    need = Box(tuple(need_offsets), tuple(need_dims))
    setup_data_mapping(comm, descriptor, own_boxes, need, validate=validate)


def DDR_ReorganizeData(
    comm: Communicator,
    nprocs: int,
    data_own: Union[np.ndarray, Sequence[np.ndarray], None],
    data_need: Optional[np.ndarray],
    descriptor: DataDescriptor,
) -> None:
    """Exchange the data (paper §III-C): one ``Alltoallw`` per round."""
    if nprocs != comm.size:
        raise ValueError(
            f"nprocs argument {nprocs} does not match communicator size {comm.size}"
        )
    reorganize_data(comm, descriptor, data_own, data_need)


class Redistributor:
    """Reusable DDR pipeline for one (layout, dtype, communicator) triple.

    >>> red = Redistributor(comm, ndims=2, dtype=np.float32)
    >>> red.setup(own=[Box((0, rank), (8, 1)), Box((0, rank + 4), (8, 1))],
    ...           need=Box((4 * (rank % 2), 4 * (rank // 2)), (4, 4)))
    >>> red.exchange([row0, row1], quadrant)

    ``exchange`` may be called every time step on fresh data — the mapping
    is computed once (the paper's "dynamic data" property).  Repeat calls
    with the same buffers also skip revalidation and staging allocations
    (see :class:`~repro.core.packing.BufferCache`).

    ``backend`` picks the execution engine: ``"alltoallw"`` (dense
    collective), ``"p2p"`` (direct sends), or ``"auto"`` (per-round
    selection driven by the plan's sparsity).  ``None`` follows the
    process default — the ``DDR_BACKEND`` environment variable when set,
    otherwise ``"alltoallw"``.

    ``transport`` picks the mpisim wire strategy for every exchange this
    instance performs: ``"zerocopy"`` (receiver copies straight out of the
    sender's live buffer), ``"packed"`` (classic pack -> payload -> unpack),
    or ``None`` to follow the communicator/process default.

    ``reliability`` configures the self-healing machinery (round retry
    budget, backoff, corruption handling, per-op deadlines) for every
    exchange this instance performs; ``None`` follows the installed fault
    layer's policy (default :class:`~repro.faults.ReliabilityPolicy`).

    A ``Redistributor`` may hold several live mappings at once: ``setup()``
    replaces (and invalidates) the *active* mapping, while
    ``new_mapping()`` returns an independent handle that stays valid and
    can be passed to ``exchange(..., mapping=...)`` — e.g. two layouts over
    the same communicator, exchanged alternately.
    """

    def __init__(
        self,
        comm: Communicator,
        ndims: int,
        dtype: np.dtype | type | str,
        backend: Optional[str] = None,
        components: int = 1,
        transport: Optional[str] = None,
        reliability: Optional[ReliabilityPolicy] = None,
    ) -> None:
        self.comm = comm
        self.descriptor = DataDescriptor.create(
            comm.size, DataLayout(ndims), dtype, components=components
        )
        self.set_backend(default_backend() if backend is None else backend)
        self.set_transport(transport)
        self.set_reliability(reliability)

    def set_backend(self, backend: str) -> None:
        self._engine = get_engine(backend)
        self.backend = backend

    def set_transport(self, transport: Optional[str]) -> None:
        if transport not in (None, TRANSPORT_ZEROCOPY, TRANSPORT_PACKED, TRANSPORT_SHM):
            raise ValueError(
                f"unknown transport {transport!r} "
                f"(use 'zerocopy', 'packed', 'shm', or None)"
            )
        self.transport = transport

    def set_reliability(self, reliability: Optional[ReliabilityPolicy]) -> None:
        if reliability is not None and not isinstance(reliability, ReliabilityPolicy):
            raise TypeError(
                f"reliability must be a ReliabilityPolicy or None, got "
                f"{type(reliability).__name__}"
            )
        self.reliability = reliability

    def setup(
        self,
        own: Sequence[Box],
        need: Optional[Box],
        validate: bool = True,
    ) -> LocalMapping:
        """Collective; every rank passes its own chunks and its needed box.

        Re-calling ``setup()`` is cheap reconfiguration: the new mapping
        becomes the active one and the previous active mapping is
        invalidated (its caches drop; further use raises
        :class:`~repro.core.mapping.StaleMappingError`).
        """
        return setup_data_mapping(self.comm, self.descriptor, own, need, validate=validate)

    def new_mapping(
        self,
        own: Sequence[Box],
        need: Optional[Box],
        validate: bool = True,
    ) -> LocalMapping:
        """Collective; build an independent mapping without touching the
        active one.  The returned handle stays valid across later
        ``setup()``/``new_mapping()`` calls and is exchanged via
        ``exchange(..., mapping=handle)``."""
        return setup_data_mapping(
            self.comm, self.descriptor, own, need, validate=validate, attach=False
        )

    @property
    def mapping(self) -> LocalMapping:
        mapping = self.descriptor.plan
        if not isinstance(mapping, LocalMapping):
            raise RuntimeError("setup() has not been called")
        return mapping

    @property
    def nrounds(self) -> int:
        return self.mapping.nrounds

    def exchange(
        self,
        own_buffers: Union[np.ndarray, Sequence[np.ndarray], None],
        need_buffer: Optional[np.ndarray],
        mapping: Optional[LocalMapping] = None,
        progress: Optional[ExchangeProgress] = None,
    ) -> ExchangeProgress:
        """Redistribute one generation of data through the prepared mapping.

        ``mapping`` defaults to the active one; pass a handle from
        ``new_mapping()`` to exchange through an alternative layout.
        Returns the exchange's :class:`~repro.core.engine.ExchangeProgress`;
        after a failure, pass it back as ``progress`` to resume without
        re-running the rounds that already completed.
        """
        return self._engine.execute(
            self.comm,
            self.mapping if mapping is None else mapping,
            own_buffers,
            need_buffer,
            transport=self.transport,
            reliability=self.reliability,
            progress=progress,
        )

    def engine_choices(self, mapping: Optional[LocalMapping] = None) -> list[str]:
        """Per-round engine the ``auto`` backend would pick for a mapping."""
        return (self.mapping if mapping is None else mapping).schedule.engine_choices()

    def gather_need(
        self,
        own_buffers: Union[np.ndarray, Sequence[np.ndarray], None],
        fill: float | int = 0,
        reuse_out: bool = False,
        mapping: Optional[LocalMapping] = None,
    ) -> Optional[np.ndarray]:
        """Convenience: allocate the need buffer, exchange, and return it.

        With ``reuse_out=True`` the same output array is returned on every
        call (refilled and re-exchanged), so a per-time-step loop allocates
        nothing; the caller must be done with the previous generation.  The
        reuse pool lives on the mapping, so concurrent mappings reuse
        independently.
        """
        active = self.mapping if mapping is None else mapping
        need = active.need
        if need is None or need.is_empty():
            self.exchange(own_buffers, None, mapping=active)
            return None
        shape = need.np_shape()
        if self.descriptor.components > 1:
            shape = shape + (self.descriptor.components,)
        if reuse_out:
            out = active.pool.take_filled(shape, self.descriptor.dtype, fill)
        else:
            out = np.full(shape, fill, dtype=self.descriptor.dtype)
        self.exchange(own_buffers, out, mapping=active)
        return out

    # -- elastic malleability (resize / retarget) ----------------------------

    def _clone_for(self, comm: Communicator) -> "Redistributor":
        """A fresh redistributor with this one's configuration on ``comm``."""
        return Redistributor(
            comm,
            self.descriptor.ndims,
            self.descriptor.mpi_type,
            backend=self.backend,
            components=self.descriptor.components,
            transport=self.transport,
            reliability=self.reliability,
        )

    def retarget(self, comm: Communicator) -> None:
        """Re-point this redistributor at a (possibly resized) communicator.

        The shared reconfiguration primitive under both voluntary
        :meth:`resize` and crash recovery
        (:class:`repro.resilience.ResilientRedistributor`): the active
        mapping — built for the old geometry — is invalidated (further use
        raises :class:`~repro.core.mapping.StaleMappingError`) and the
        descriptor is rebuilt for the new communicator size.  Local and
        cheap; call :meth:`setup` afterwards to declare the new layout.
        """
        plan = self.descriptor.plan
        if isinstance(plan, LocalMapping):
            plan.invalidate()
        self.comm = comm
        self.descriptor = DataDescriptor.create(
            comm.size,
            self.descriptor.layout,
            self.descriptor.mpi_type,
            components=self.descriptor.components,
        )

    def resize(
        self,
        new_n: int,
        own_buffers: Union[np.ndarray, Sequence[np.ndarray], None],
        layout: Callable[[int, int], Optional[Box]],
        *,
        worker: Optional[Callable[..., Any]] = None,
        worker_args: Sequence[Any] = (),
        validate: bool = True,
        retire_leavers: bool = True,
    ) -> "ResizeResult":
        """Remap live data onto a grown or shrunken rank set, without restart.

        Collective over the current communicator.  ``own_buffers`` holds
        this rank's live data for the active mapping's own chunks;
        ``layout(rank, new_n)`` names the box each post-resize rank owns
        (``None`` for a member that keeps no data).  The migration itself
        is an ordinary components-aware DDR exchange — old ranks declare
        their current chunks as *own*, the target layout as *need* — so
        the result on every surviving rank is bitwise-equal to a fresh
        scatter of the global array.

        Growing (``new_n > size``) spawns the extra ranks into the running
        world (:meth:`Communicator.spawn`); each runs
        ``worker(result, *worker_args)`` after adopting its slice, so
        ``worker`` is required and must mirror whatever collectives the
        surviving ranks run next.  Shrinking ranks ``new_n..size-1`` out
        migrates on the current communicator first, then splits them off;
        leavers are retired in the liveness table (``retire_leavers``) and
        get ``ResizeResult(member=False)``.  ``new_n == size`` is a pure
        remap onto ``layout``.

        Afterwards this redistributor is retargeted (old mappings raise
        :class:`~repro.core.mapping.StaleMappingError`) and *unmapped*:
        members call :meth:`setup` to declare the next working layout —
        typically ``setup(own=[result.own], need=...)``.
        """
        if new_n < 1:
            raise ValueError(f"resize target must be >= 1, got {new_n}")
        m = self.comm.size
        rank = self.comm.rank
        own_boxes = list(self.mapping.own_chunks)
        if own_buffers is None:
            bufs: list[np.ndarray] = []
        elif isinstance(own_buffers, np.ndarray):
            bufs = [own_buffers]
        else:
            bufs = list(own_buffers)
        if len(bufs) != len(own_boxes):
            raise ValueError(
                f"resize needs one buffer per active own chunk: got "
                f"{len(bufs)} buffer(s) for {len(own_boxes)} chunk(s)"
            )

        if new_n > m:
            if worker is None:
                raise ValueError(
                    "growing requires a worker for the spawned ranks: "
                    "resize(..., worker=fn) runs fn(result, *worker_args) "
                    "on each joiner after it adopts its slice"
                )
            spec = {
                "ndims": self.descriptor.ndims,
                "dtype": self.descriptor.mpi_type,
                "components": self.descriptor.components,
                "backend": self.backend,
                "transport": self.transport,
                "reliability": self.reliability,
                "layout": layout,
                "validate": validate,
                "worker": worker,
                "worker_args": tuple(worker_args),
            }
            union = self.comm.spawn(new_n - m, _resize_join, spec)
            mover = self._clone_for(union)
            new_box = layout(union.rank, new_n)
            migration = mover.new_mapping(own=own_boxes, need=new_box, validate=validate)
            data = mover.gather_need(bufs if bufs else None, mapping=migration)
            migration.invalidate()
            self.retarget(union)
            return ResizeResult(True, union, self, new_box, data)

        # Shrink — or same-size remap: migrate on the current communicator
        # (leaving ranks declare need=None), then split the leavers off.
        stay = rank < new_n
        new_box = layout(rank, new_n) if stay else None
        migration = self.new_mapping(own=own_boxes, need=new_box, validate=validate)
        data = self.gather_need(bufs if bufs else None, mapping=migration)
        migration.invalidate()
        if new_n == m:
            self.retarget(self.comm)
            return ResizeResult(True, self.comm, self, new_box, data)
        sub = self.comm.Split(0 if stay else -1, key=rank)
        if not stay:
            my_world = self.comm.world_ranks[rank]
            plan = self.descriptor.plan
            if isinstance(plan, LocalMapping):
                plan.invalidate()
            if retire_leavers:
                self.comm.fabric.mark_retired(my_world)
            return ResizeResult(False, None, None, None, None)
        assert sub is not None
        self.retarget(sub)
        return ResizeResult(True, sub, self, new_box, data)


@dataclass
class ResizeResult:
    """Per-rank outcome of :meth:`Redistributor.resize`.

    ``member`` is False on a rank that left the world (shrink): every other
    field is then ``None``.  On members, ``comm`` is the new communicator,
    ``redistributor`` the retargeted (grow: spawned-side fresh)
    redistributor — unmapped, awaiting ``setup()`` — ``own`` the box
    ``layout(rank, new_n)`` assigned, and ``data`` its migrated contents
    (``None`` when ``own`` is ``None``).
    """

    member: bool
    comm: Optional[Communicator]
    redistributor: Optional[Redistributor]
    own: Optional[Box]
    data: Optional[np.ndarray]


def _resize_join(comm: Communicator, spec: dict) -> Any:
    """Bootstrap body for ranks spawned into a world by ``resize`` (grow).

    Runs the joiner's half of the migration exchange — no own chunks, the
    target layout's box as need — then hands the adopted slice to the
    user worker.  Collective order matches the members' side exactly:
    one ``setup_data_mapping`` plus one exchange on the merged
    communicator, after which all coordination is the worker's.
    """
    red = Redistributor(
        comm,
        spec["ndims"],
        spec["dtype"],
        backend=spec["backend"],
        components=spec["components"],
        transport=spec["transport"],
        reliability=spec["reliability"],
    )
    new_box = spec["layout"](comm.rank, comm.size)
    migration = red.new_mapping(own=[], need=new_box, validate=spec["validate"])
    data = red.gather_need(None, mapping=migration)
    migration.invalidate()
    result = ResizeResult(True, comm, red, new_box, data)
    return spec["worker"](result, *spec["worker_args"])
