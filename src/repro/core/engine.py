"""Pluggable execution engines for ``DDR_ReorganizeData``.

All engines replay the same :class:`~repro.core.schedule.ExchangeSchedule`
IR and are bit-identical on the wire's *contents* (property-tested); they
differ only in how a round's lanes hit the network:

``AlltoallwEngine``
    One ``MPI_Alltoallw`` per round (paper §III-C) — the O(P) dense
    collective, with the self-transfer carried on the diagonal lane.
``P2PEngine``
    The paper's §V future work: only actual partners communicate.  Per
    round it posts every ``Irecv``, then every ``Isend`` (rendezvous on
    the zero-copy transport), then waits — no serialisation on message
    arrival order.
``AutoEngine``
    Per-round selection between the two, keyed on the plan's global
    sparsity statistic (``RoundSchedule.max_partners``).  Because that
    statistic is derived from the deterministic global plan, every rank
    picks the same protocol for a round without communicating.

The base class owns everything the engines share: staleness/communicator
validation, buffer normalisation and cached validation, transport
resolution, the per-round send-buffer selection, and — new with the fault
fabric — the reliability loop: every round runs through a retry harness
that consults the installed fault layer at round *entry* (before any
message is posted, so a local retry never desynchronises collective
matching), backs off per the :class:`~repro.faults.ReliabilityPolicy`, and
records completed rounds in an :class:`ExchangeProgress` so a failed
exchange can be resumed without re-running finished rounds.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..faults.injector import FAULTS
from ..faults.policy import ReliabilityPolicy
from ..mpisim.comm import TRANSPORT_PACKED, Communicator
from ..mpisim.errors import (
    MemoryBudgetError,
    RetriesExhaustedError,
    TransientFaultError,
)
from ..mpisim.request import Request, wait_all
from ..obs.tracer import TRACER
from ..utils.membudget import MEMORY_BUDGET
from .box import Box
from .descriptor import DataDescriptor
from .mapping import LocalMapping
from .packing import check_buffers_cached, subarray_for
from .schedule import (
    DEFAULT_BOUNDED_CHUNK_BYTES,
    Lane,
    RoundSchedule,
    chunk_bytes_for,
    collective_preferred,
)

#: Environment override for the default backend (e.g. ``DDR_BACKEND=auto``).
ENV_BACKEND = "DDR_BACKEND"


def round_staging_estimate(rnd: RoundSchedule, zero_copy: bool) -> int:
    """The round's budget-relevant peak: the *global* worst-rank statistic
    when the schedule carries one (so every rank reaches the same verdict),
    else this rank's own estimate (cost-model schedules only)."""
    if zero_copy:
        return rnd.self_bytes
    return rnd.max_round_bytes or rnd.peak_bytes()

Buffers = Union[np.ndarray, Sequence[np.ndarray], None]


@dataclass
class ExchangeProgress:
    """Resumable record of one exchange: which rounds finished, what retried.

    ``execute`` returns one of these; passing it back in after a failure
    resumes the exchange, skipping every round already in ``completed``.
    Skipping is safe because a round is recorded only after *this rank*
    finished all its sends and receives for the round, and round faults are
    injected strictly at round entry — a recorded round left no partner
    half-served.
    """

    #: Round indices this rank has fully completed.
    completed: set[int] = field(default_factory=set)
    #: round index -> number of entry retries it took to get through.
    retries: dict[int, int] = field(default_factory=dict)
    #: Tag epoch this exchange's direct-round messages are stamped with.
    #: Assigned on the first ``execute`` call and *reused* on resume, so
    #: messages already in flight from the failed attempt still match.
    tag_epoch: Optional[int] = None

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def record_retry(self, round_index: int) -> None:
        self.retries[round_index] = self.retries.get(round_index, 0) + 1


def normalise_own(data_own: Buffers) -> list[np.ndarray]:
    """Accept one array, a sequence, or ``None`` for the owned-chunk buffers."""
    if data_own is None:
        return []
    if isinstance(data_own, np.ndarray):
        return [data_own]
    return list(data_own)


def mapping_from_descriptor(descriptor: DataDescriptor) -> LocalMapping:
    """The descriptor's attached mapping, or the canonical lifecycle error."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError(
            "DDR_SetupDataMapping must be called before DDR_ReorganizeData"
        )
    return mapping


class ExchangeEngine:
    """Base class: shared validation/staging; subclasses run one round."""

    name: str = "abstract"

    def execute(
        self,
        comm: Communicator,
        mapping: LocalMapping,
        data_own: Buffers,
        data_need: Optional[np.ndarray],
        transport: Optional[str] = None,
        reliability: Optional[ReliabilityPolicy] = None,
        progress: Optional[ExchangeProgress] = None,
    ) -> ExchangeProgress:
        """Redistribute: fill ``data_need`` from everyone's ``data_own``.

        Collective over ``comm`` — every rank must call with the same
        engine and transport.  Repeat calls with the same arrays skip
        buffer revalidation (the mapping caches the accepted set) and, on
        the zero-copy transport, allocate no staging arrays at all.

        ``reliability`` configures the round retry harness (defaults to the
        installed fault layer's policy, else ``ReliabilityPolicy()``).
        ``progress`` resumes a previously failed exchange: rounds already
        in ``progress.completed`` are skipped.  The (possibly fresh)
        progress record is returned, fully populated on success.
        """
        mapping.check_usable(comm)
        own, need = check_buffers_cached(
            mapping.plan,
            mapping.dtype,
            normalise_own(data_own),
            data_need,
            mapping.components,
            mapping.buffer_cache,
        )
        # "Direct" here means: the self-lane may copy straight between the
        # user's buffers, and P2P sends request rendezvous.  True for both
        # zerocopy and shm (the self lane never leaves the process either
        # way); a rendezvous request under shm simply degrades to an shm-
        # staged eager send inside ``Isend``.
        zero_copy = comm.resolve_transport(transport) != TRANSPORT_PACKED
        policy = reliability if reliability is not None else FAULTS.policy
        if progress is None:
            progress = ExchangeProgress()
        if progress.tag_epoch is None:
            progress.tag_epoch = mapping.next_tag_epoch()
        nrounds = max(1, len(mapping.rounds))
        rank = comm.world_rank_of(comm.rank)
        if not TRACER.enabled:
            for rnd in mapping.rounds:
                if rnd.index in progress.completed:
                    continue
                sendbuf: Optional[np.ndarray] = None
                if rnd.chunk_index is not None:
                    sendbuf = own[rnd.chunk_index]
                self._run_round_reliable(
                    comm, rnd, sendbuf, need, transport, zero_copy,
                    rank, policy, progress,
                    progress.tag_epoch * nrounds + rnd.index,
                )
            return progress
        # Traced path: one span per exchange, one per round.  The round span
        # carries the wire protocol actually used (AutoEngine's per-round
        # decision becomes visible here), lane count, and byte volumes.
        with TRACER.span(
            "ddr.exchange",
            rank=rank,
            backend=self.name,
            rounds=len(mapping.rounds),
            transport=comm.resolve_transport(transport),
            resumed=len(progress.completed),
        ):
            for rnd in mapping.rounds:
                if rnd.index in progress.completed:
                    continue
                traced_sendbuf: Optional[np.ndarray] = None
                if rnd.chunk_index is not None:
                    traced_sendbuf = own[rnd.chunk_index]
                with TRACER.span(
                    "ddr.round",
                    rank=rank,
                    round=rnd.index,
                    backend=self.round_backend(rnd),
                    lanes=len(rnd.sends) + len(rnd.recvs),
                    nbytes=rnd.bytes_out,
                    bytes_in=rnd.bytes_in,
                    max_partners=rnd.max_partners,
                ):
                    self._run_round_reliable(
                        comm, rnd, traced_sendbuf, need, transport, zero_copy,
                        rank, policy, progress,
                        progress.tag_epoch * nrounds + rnd.index,
                    )
        return progress

    def _run_round_reliable(
        self,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
        zero_copy: bool,
        rank: int,
        policy: ReliabilityPolicy,
        progress: ExchangeProgress,
        tag: int,
    ) -> None:
        """One round through the retry harness; records completion.

        Round-entry faults (:class:`TransientFaultError` from the fault
        layer's ``on_round_start`` hook) fire before any message of the
        round is posted, so retrying here is purely local: peers never see
        a half-executed attempt and collective matching stays aligned.
        Failures *inside* a round (timeouts, corruption, crashes) are not
        collectively safe to retry and propagate unchanged.
        """
        attempt = 0
        while True:
            try:
                if FAULTS.active:
                    FAULTS.on_round_start(rank, rnd.index, attempt)
                self.run_round(comm, rnd, sendbuf, need, transport, zero_copy, tag)
            except TransientFaultError as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    raise RetriesExhaustedError(
                        f"rank {rank} round {rnd.index}: still failing after "
                        f"{policy.max_retries} retries: {exc}"
                    ) from exc
                progress.record_retry(rnd.index)
                backoff = policy.backoff_s(attempt)
                if TRACER.enabled:
                    with TRACER.span(
                        "fault.round_retry",
                        rank=rank, round=rnd.index,
                        attempt=attempt, backoff_s=backoff,
                    ):
                        time.sleep(backoff)
                else:
                    time.sleep(backoff)
            else:
                progress.completed.add(rnd.index)
                return

    def round_backend(self, rnd: RoundSchedule) -> str:
        """The wire protocol this engine uses for ``rnd`` (trace attribute)."""
        return self.name

    def run_round(
        self,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
        zero_copy: bool,
        tag: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    # -- shared round primitives --------------------------------------------

    @staticmethod
    def _collective_round(
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
    ) -> None:
        comm.Alltoallw(sendbuf, rnd.sendtypes(), need, rnd.recvtypes(), transport=transport)

    @staticmethod
    def _self_copy(
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
    ) -> None:
        send = rnd.self_send
        if send is None or send.datatype is None or send.datatype.size_elements() == 0:
            return
        recv = rnd.self_recv
        assert sendbuf is not None and need is not None
        assert recv is not None and recv.datatype is not None
        if zero_copy and not np.may_share_memory(sendbuf, need):
            send.datatype.copy_into(sendbuf, need, recv.datatype)
        else:
            recv.datatype.unpack(need, send.datatype.pack(sendbuf))

    @classmethod
    def _direct_round(
        cls,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
        tag: Optional[int] = None,
    ) -> None:
        # Self-transfer first, without touching the mailbox.
        cls._self_copy(rnd, sendbuf, need, zero_copy)

        if tag is None:
            tag = rnd.index

        # Every receive is posted before any send: a (source, round) pair
        # carries at most one message (a source drains at most one chunk per
        # round) and the tag is unique per (exchange epoch, round), so
        # matching is exact across repeated exchanges through the same
        # mapping — a message lost from one exchange can never be satisfied
        # by the next one's — and no rank blocks on arrival order.
        recv_requests: list[Request] = []
        for lane in rnd.recvs:
            if lane.datatype is None or lane.datatype.size_elements() == 0:
                continue
            assert need is not None
            recv_requests.append(
                comm.Irecv(need, lane.peer, tag=tag, datatype=lane.datatype)
            )

        send_requests: list[Request] = []
        for lane in rnd.sends:
            if lane.datatype is None or lane.datatype.size_elements() == 0:
                continue
            assert sendbuf is not None
            send_requests.append(
                comm.Isend(
                    sendbuf, lane.peer, tag=tag, datatype=lane.datatype,
                    rendezvous=zero_copy,
                )
            )

        wait_all(recv_requests)
        # Rendezvous sends hold the buffer live until the peer has copied;
        # the round boundary is where that guarantee must be settled.
        wait_all(send_requests)

    # -- bounded lowering (budget-sized pieces) -------------------------------

    @staticmethod
    def _require_budget(rnd: RoundSchedule, zero_copy: bool) -> None:
        """Strict-engine preamble: refuse an over-budget round *before* any
        message is posted, with the typed error naming the way out."""
        limit = MEMORY_BUDGET.limit_bytes
        if limit is None:
            return
        estimate = round_staging_estimate(rnd, zero_copy)
        if estimate > limit:
            raise MemoryBudgetError(
                f"round {rnd.index}: estimated staging peak {estimate} bytes "
                f"exceeds the {limit}-byte DDR_MEM_BUDGET_MB budget; run the "
                "'bounded' (or 'auto') backend to lower the round into "
                "budget-sized pieces"
            )

    @staticmethod
    def _piece_regions(region: Box, nbytes: int, chunk_bytes: int) -> list[Box]:
        """Split ``region`` into row-slices of at most ``chunk_bytes`` along
        the slowest-varying axis (paper order: ``dims[-1]``).

        A pure function of ``(region, chunk_bytes)`` — the sender and the
        receiver of a lane hold the same overlap box and the same static
        budget limit, so both derive the identical piece sequence without
        communicating.  A single row larger than ``chunk_bytes`` stays one
        piece (the floor of what row-slicing can do).
        """
        rows = region.dims[-1]
        if rows <= 1 or nbytes <= chunk_bytes:
            return [region]
        row_bytes = max(1, nbytes // rows)
        rows_per = max(1, chunk_bytes // row_bytes)
        axis = region.ndim - 1
        pieces: list[Box] = []
        for start in range(0, rows, rows_per):
            count = min(rows_per, rows - start)
            offset = list(region.offset)
            offset[axis] += start
            dims = list(region.dims)
            dims[axis] = count
            pieces.append(Box(tuple(offset), tuple(dims)))
        return pieces

    @classmethod
    def _lane_pieces(
        cls, rnd: RoundSchedule, lane: Optional[Lane], chunk_bytes: int
    ):
        """Per-piece subarray types for ``lane``, cached on the round.

        Falls back to the lane's full datatype when the geometry context is
        missing (schedules built without boxes) or the lane already fits.
        """
        if lane is None or lane.datatype is None or lane.datatype.size_elements() == 0:
            return []
        if (
            lane.region is None
            or lane.container is None
            or rnd.mpi_type is None
            or lane.nbytes <= chunk_bytes
        ):
            return [lane.datatype]
        key = (lane.container, lane.region, chunk_bytes)
        cached = rnd._piece_cache.get(key)
        if cached is None:
            cached = [
                subarray_for(lane.container, piece, rnd.mpi_type, rnd.components)
                for piece in cls._piece_regions(lane.region, lane.nbytes, chunk_bytes)
            ]
            rnd._piece_cache[key] = cached
        return cached

    @classmethod
    def _self_copy_bounded(
        cls,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
        chunk_bytes: int,
    ) -> None:
        """Self-transfer with the packed temporary capped at ~``chunk_bytes``."""
        send = rnd.self_send
        if send is None or send.datatype is None or send.datatype.size_elements() == 0:
            return
        recv = rnd.self_recv
        assert sendbuf is not None and need is not None
        assert recv is not None and recv.datatype is not None
        if zero_copy and not np.may_share_memory(sendbuf, need):
            send.datatype.copy_into(sendbuf, need, recv.datatype)
            return
        if (
            send.region is None
            or send.container is None
            or recv.container is None
            or rnd.mpi_type is None
            or send.nbytes <= chunk_bytes
        ):
            recv.datatype.unpack(need, send.datatype.pack(sendbuf))
            return
        send_pieces = cls._lane_pieces(rnd, send, chunk_bytes)
        recv_pieces = cls._lane_pieces(rnd, recv, chunk_bytes)
        for send_type, recv_type in zip(send_pieces, recv_pieces):
            recv_type.unpack(need, send_type.pack(sendbuf))

    @classmethod
    def _bounded_round(
        cls,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
        tag: Optional[int],
        chunk_bytes: int,
    ) -> None:
        """One round lowered into budget-sized pieces (staged sendrecv).

        Peers are walked in offset-ring order (send to ``rank + offset``,
        receive from ``rank - offset``) and each lane is re-sliced into
        pieces of at most ``chunk_bytes``.  Per piece: post the receive,
        eagerly stage the matching send, wait the receive — so at any
        instant only a bounded handful of pieces is resident instead of the
        whole round's footprint.

        Deadlock-free by induction on the global ``(offset, piece)`` order:
        every rank posts its piece-``k`` send (eager — never blocks) before
        waiting its piece-``k`` receive, and the two ends of a lane derive
        identical piece counts from the same overlap box and static budget,
        so the minimal blocked rank's awaited piece has always already been
        posted.  Pieces of one lane share the round tag; the mailbox is
        FIFO per (source, tag), so they arrive and match in order.
        """
        cls._self_copy_bounded(rnd, sendbuf, need, zero_copy, chunk_bytes)

        if tag is None:
            tag = rnd.index
        rank = comm.rank
        sends_by_peer = {lane.peer: lane for lane in rnd.sends}
        recvs_by_peer = {lane.peer: lane for lane in rnd.recvs}
        for offset in range(1, rnd.nprocs):
            dest = (rank + offset) % rnd.nprocs
            src = (rank - offset) % rnd.nprocs
            send_pieces = cls._lane_pieces(rnd, sends_by_peer.get(dest), chunk_bytes)
            recv_pieces = cls._lane_pieces(rnd, recvs_by_peer.get(src), chunk_bytes)
            if not send_pieces and not recv_pieces:
                continue
            pending_sends: list[Request] = []
            for k in range(max(len(send_pieces), len(recv_pieces))):
                recv_request: Optional[Request] = None
                if k < len(recv_pieces):
                    assert need is not None
                    recv_request = comm.Irecv(
                        need, src, tag=tag, datatype=recv_pieces[k]
                    )
                if k < len(send_pieces):
                    assert sendbuf is not None
                    pending_sends.append(
                        comm.Isend(
                            sendbuf, dest, tag=tag, datatype=send_pieces[k],
                            rendezvous=False,
                        )
                    )
                if recv_request is not None:
                    recv_request.Wait()
            wait_all(pending_sends)

    @classmethod
    def _run_bounded(
        cls,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
        tag: Optional[int],
    ) -> None:
        """Bounded lowering entry point: derive the piece size from the
        static budget (all ranks agree), trace the lowering, run the round."""
        limit = MEMORY_BUDGET.limit_bytes
        chunk_bytes = (
            chunk_bytes_for(limit) if limit is not None else DEFAULT_BOUNDED_CHUNK_BYTES
        )
        if zero_copy:
            # Nothing is staged on this transport; the direct protocol is
            # already within any budget the staging model would accept.
            cls._direct_round(comm, rnd, sendbuf, need, zero_copy, tag)
            return
        if not TRACER.enabled:
            cls._bounded_round(comm, rnd, sendbuf, need, zero_copy, tag, chunk_bytes)
            return
        with TRACER.span(
            "ddr.lowering",
            rank=comm.rank,
            round=rnd.index,
            chunk_bytes=chunk_bytes,
            nbytes=rnd.bytes_out,
            bytes_in=rnd.bytes_in,
            peak_estimate=rnd.lowered_peak_bytes(chunk_bytes),
        ):
            cls._bounded_round(comm, rnd, sendbuf, need, zero_copy, tag, chunk_bytes)


class AlltoallwEngine(ExchangeEngine):
    """Dense collective backend: one ``Alltoallw`` per round (paper §III-C).

    Strict about memory: with a budget installed, an over-budget round
    raises the typed ``MemoryBudgetError`` at round entry instead of
    staging its way toward real OOM.
    """

    name = "alltoallw"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        self._require_budget(rnd, zero_copy)
        self._collective_round(comm, rnd, sendbuf, need, transport)


class P2PEngine(ExchangeEngine):
    """Direct-send backend (paper §V): only actual partners communicate.

    Strict about memory, like ``AlltoallwEngine``: over-budget rounds
    raise typed rather than lower.
    """

    name = "p2p"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        self._require_budget(rnd, zero_copy)
        self._direct_round(comm, rnd, sendbuf, need, zero_copy, tag)


class BoundedEngine(ExchangeEngine):
    """Budget-bounded backend: every staged round runs in lowered pieces.

    Trades extra per-piece handshakes for a staging footprint capped near
    half the installed budget (arXiv 2112.01075's trade, on this IR): the
    piece size comes from :func:`~repro.core.schedule.chunk_bytes_for` of
    the static limit, so all ranks lower identically with no negotiation.
    Without a budget it lowers with a fixed default piece size — bitwise
    identical output either way.
    """

    name = "bounded"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        self._run_bounded(comm, rnd, sendbuf, need, zero_copy, tag)


class AutoEngine(ExchangeEngine):
    """Plan-driven per-round selection: dense -> collective, sparse -> direct.

    The decision keys on ``rnd.max_partners`` — the busiest rank's partner
    count for the round, computed from the global plan at setup time — so
    all ranks agree on each round's wire protocol with no negotiation.

    With a memory budget installed the selection widens to a (time,
    peak-memory) Pareto pick over {alltoallw, p2p, bounded}, priced by the
    analytic network model: among the candidates whose modeled staging
    peak fits the budget, the fastest wins; when none fit, the
    minimum-peak bounded lowering does.  Both inputs (the global per-round
    statistics and the static limit) are identical on every rank, so the
    wire protocol still needs no negotiation.
    """

    name = "auto"

    @staticmethod
    def _pick(rnd: RoundSchedule, zero_copy: bool) -> str:
        limit = MEMORY_BUDGET.limit_bytes
        if limit is None or zero_copy:
            return (
                "alltoallw"
                if collective_preferred(rnd.max_partners, rnd.nprocs)
                else "p2p"
            )
        # Lazy: netmodel imports core at module level; core.engine must not
        # return the favour at import time.
        from ..netmodel.analytic import pareto_round_backend
        from ..netmodel.cluster import COOLEY

        return pareto_round_backend(
            COOLEY,
            nprocs=rnd.nprocs,
            max_partners=rnd.max_partners,
            max_round_bytes=round_staging_estimate(rnd, zero_copy),
            limit_bytes=limit,
        )

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        choice = self._pick(rnd, zero_copy)
        if choice == "bounded":
            self._run_bounded(comm, rnd, sendbuf, need, zero_copy, tag)
        elif choice == "alltoallw":
            self._collective_round(comm, rnd, sendbuf, need, transport)
        else:
            self._direct_round(comm, rnd, sendbuf, need, zero_copy, tag)

    def round_backend(self, rnd: RoundSchedule) -> str:
        """Per-round choice — the trace shows which protocol auto selected."""
        return self._pick(rnd, zero_copy=False)

    @staticmethod
    def choices(mapping: LocalMapping) -> list[str]:
        """Per-round engine this mapping will route through (for inspection)."""
        return mapping.schedule.engine_choices()


ENGINES: dict[str, ExchangeEngine] = {
    engine.name: engine
    for engine in (AlltoallwEngine(), P2PEngine(), AutoEngine(), BoundedEngine())
}


def get_engine(name: str) -> ExchangeEngine:
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose one of {sorted(ENGINES)}"
        ) from None


def default_backend() -> str:
    """The process-wide default engine: ``DDR_BACKEND`` env var, else alltoallw."""
    value = os.environ.get(ENV_BACKEND)
    if value is None:
        return "alltoallw"
    if value not in ENGINES:
        raise ValueError(
            f"{ENV_BACKEND}={value!r} is not a backend; choose one of {sorted(ENGINES)}"
        )
    return value
