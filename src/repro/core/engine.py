"""Pluggable execution engines for ``DDR_ReorganizeData``.

All engines replay the same :class:`~repro.core.schedule.ExchangeSchedule`
IR and are bit-identical on the wire's *contents* (property-tested); they
differ only in how a round's lanes hit the network:

``AlltoallwEngine``
    One ``MPI_Alltoallw`` per round (paper §III-C) — the O(P) dense
    collective, with the self-transfer carried on the diagonal lane.
``P2PEngine``
    The paper's §V future work: only actual partners communicate.  Per
    round it posts every ``Irecv``, then every ``Isend`` (rendezvous on
    the zero-copy transport), then waits — no serialisation on message
    arrival order.
``AutoEngine``
    Per-round selection between the two, keyed on the plan's global
    sparsity statistic (``RoundSchedule.max_partners``).  Because that
    statistic is derived from the deterministic global plan, every rank
    picks the same protocol for a round without communicating.

The base class owns everything the engines share: staleness/communicator
validation, buffer normalisation and cached validation, transport
resolution, and the per-round send-buffer selection.  This file is the
*only* place that logic lives.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

import numpy as np

from ..mpisim.comm import TRANSPORT_ZEROCOPY, Communicator
from ..mpisim.request import Request, wait_all
from ..obs.tracer import TRACER
from .descriptor import DataDescriptor
from .mapping import LocalMapping
from .packing import check_buffers_cached
from .schedule import RoundSchedule, collective_preferred

#: Environment override for the default backend (e.g. ``DDR_BACKEND=auto``).
ENV_BACKEND = "DDR_BACKEND"

Buffers = Union[np.ndarray, Sequence[np.ndarray], None]


def normalise_own(data_own: Buffers) -> list[np.ndarray]:
    """Accept one array, a sequence, or ``None`` for the owned-chunk buffers."""
    if data_own is None:
        return []
    if isinstance(data_own, np.ndarray):
        return [data_own]
    return list(data_own)


def mapping_from_descriptor(descriptor: DataDescriptor) -> LocalMapping:
    """The descriptor's attached mapping, or the canonical lifecycle error."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError(
            "DDR_SetupDataMapping must be called before DDR_ReorganizeData"
        )
    return mapping


class ExchangeEngine:
    """Base class: shared validation/staging; subclasses run one round."""

    name: str = "abstract"

    def execute(
        self,
        comm: Communicator,
        mapping: LocalMapping,
        data_own: Buffers,
        data_need: Optional[np.ndarray],
        transport: Optional[str] = None,
    ) -> None:
        """Redistribute: fill ``data_need`` from everyone's ``data_own``.

        Collective over ``comm`` — every rank must call with the same
        engine and transport.  Repeat calls with the same arrays skip
        buffer revalidation (the mapping caches the accepted set) and, on
        the zero-copy transport, allocate no staging arrays at all.
        """
        mapping.check_usable(comm)
        own, need = check_buffers_cached(
            mapping.plan,
            mapping.dtype,
            normalise_own(data_own),
            data_need,
            mapping.components,
            mapping.buffer_cache,
        )
        zero_copy = comm.resolve_transport(transport) == TRANSPORT_ZEROCOPY
        if not TRACER.enabled:
            for rnd in mapping.rounds:
                sendbuf: Optional[np.ndarray] = None
                if rnd.chunk_index is not None:
                    sendbuf = own[rnd.chunk_index]
                self.run_round(comm, rnd, sendbuf, need, transport, zero_copy)
            return
        # Traced path: one span per exchange, one per round.  The round span
        # carries the wire protocol actually used (AutoEngine's per-round
        # decision becomes visible here), lane count, and byte volumes.
        rank = comm.world_rank_of(comm.rank)
        with TRACER.span(
            "ddr.exchange",
            rank=rank,
            backend=self.name,
            rounds=len(mapping.rounds),
            transport=comm.resolve_transport(transport),
        ):
            for rnd in mapping.rounds:
                traced_sendbuf: Optional[np.ndarray] = None
                if rnd.chunk_index is not None:
                    traced_sendbuf = own[rnd.chunk_index]
                with TRACER.span(
                    "ddr.round",
                    rank=rank,
                    round=rnd.index,
                    backend=self.round_backend(rnd),
                    lanes=len(rnd.sends) + len(rnd.recvs),
                    nbytes=rnd.bytes_out,
                    bytes_in=rnd.bytes_in,
                    max_partners=rnd.max_partners,
                ):
                    self.run_round(comm, rnd, traced_sendbuf, need, transport, zero_copy)

    def round_backend(self, rnd: RoundSchedule) -> str:
        """The wire protocol this engine uses for ``rnd`` (trace attribute)."""
        return self.name

    def run_round(
        self,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
        zero_copy: bool,
    ) -> None:
        raise NotImplementedError

    # -- shared round primitives --------------------------------------------

    @staticmethod
    def _collective_round(
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
    ) -> None:
        comm.Alltoallw(sendbuf, rnd.sendtypes(), need, rnd.recvtypes(), transport=transport)

    @staticmethod
    def _self_copy(
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
    ) -> None:
        send = rnd.self_send
        if send is None or send.datatype is None or send.datatype.size_elements() == 0:
            return
        recv = rnd.self_recv
        assert sendbuf is not None and need is not None
        assert recv is not None and recv.datatype is not None
        if zero_copy and not np.may_share_memory(sendbuf, need):
            send.datatype.copy_into(sendbuf, need, recv.datatype)
        else:
            recv.datatype.unpack(need, send.datatype.pack(sendbuf))

    @classmethod
    def _direct_round(
        cls,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
    ) -> None:
        # Self-transfer first, without touching the mailbox.
        cls._self_copy(rnd, sendbuf, need, zero_copy)

        # Every receive is posted before any send: a (source, round) pair
        # carries at most one message (a source drains at most one chunk per
        # round), so the round-index tag disambiguates fully and no rank
        # blocks on arrival order.
        recv_requests: list[Request] = []
        for lane in rnd.recvs:
            if lane.datatype is None or lane.datatype.size_elements() == 0:
                continue
            assert need is not None
            recv_requests.append(
                comm.Irecv(need, lane.peer, tag=rnd.index, datatype=lane.datatype)
            )

        send_requests: list[Request] = []
        for lane in rnd.sends:
            if lane.datatype is None or lane.datatype.size_elements() == 0:
                continue
            assert sendbuf is not None
            send_requests.append(
                comm.Isend(
                    sendbuf, lane.peer, tag=rnd.index, datatype=lane.datatype,
                    rendezvous=zero_copy,
                )
            )

        wait_all(recv_requests)
        # Rendezvous sends hold the buffer live until the peer has copied;
        # the round boundary is where that guarantee must be settled.
        wait_all(send_requests)


class AlltoallwEngine(ExchangeEngine):
    """Dense collective backend: one ``Alltoallw`` per round (paper §III-C)."""

    name = "alltoallw"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy) -> None:
        self._collective_round(comm, rnd, sendbuf, need, transport)


class P2PEngine(ExchangeEngine):
    """Direct-send backend (paper §V): only actual partners communicate."""

    name = "p2p"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy) -> None:
        self._direct_round(comm, rnd, sendbuf, need, zero_copy)


class AutoEngine(ExchangeEngine):
    """Plan-driven per-round selection: dense -> collective, sparse -> direct.

    The decision keys on ``rnd.max_partners`` — the busiest rank's partner
    count for the round, computed from the global plan at setup time — so
    all ranks agree on each round's wire protocol with no negotiation.
    """

    name = "auto"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy) -> None:
        if collective_preferred(rnd.max_partners, rnd.nprocs):
            self._collective_round(comm, rnd, sendbuf, need, transport)
        else:
            self._direct_round(comm, rnd, sendbuf, need, zero_copy)

    def round_backend(self, rnd: RoundSchedule) -> str:
        """Per-round choice — the trace shows which protocol auto selected."""
        if collective_preferred(rnd.max_partners, rnd.nprocs):
            return "alltoallw"
        return "p2p"

    @staticmethod
    def choices(mapping: LocalMapping) -> list[str]:
        """Per-round engine this mapping will route through (for inspection)."""
        return mapping.schedule.engine_choices()


ENGINES: dict[str, ExchangeEngine] = {
    engine.name: engine
    for engine in (AlltoallwEngine(), P2PEngine(), AutoEngine())
}


def get_engine(name: str) -> ExchangeEngine:
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose one of {sorted(ENGINES)}"
        ) from None


def default_backend() -> str:
    """The process-wide default engine: ``DDR_BACKEND`` env var, else alltoallw."""
    value = os.environ.get(ENV_BACKEND)
    if value is None:
        return "alltoallw"
    if value not in ENGINES:
        raise ValueError(
            f"{ENV_BACKEND}={value!r} is not a backend; choose one of {sorted(ENGINES)}"
        )
    return value
