"""Pluggable execution engines for ``DDR_ReorganizeData``.

All engines replay the same :class:`~repro.core.schedule.ExchangeSchedule`
IR and are bit-identical on the wire's *contents* (property-tested); they
differ only in how a round's lanes hit the network:

``AlltoallwEngine``
    One ``MPI_Alltoallw`` per round (paper §III-C) — the O(P) dense
    collective, with the self-transfer carried on the diagonal lane.
``P2PEngine``
    The paper's §V future work: only actual partners communicate.  Per
    round it posts every ``Irecv``, then every ``Isend`` (rendezvous on
    the zero-copy transport), then waits — no serialisation on message
    arrival order.
``AutoEngine``
    Per-round selection between the two, keyed on the plan's global
    sparsity statistic (``RoundSchedule.max_partners``).  Because that
    statistic is derived from the deterministic global plan, every rank
    picks the same protocol for a round without communicating.

The base class owns everything the engines share: staleness/communicator
validation, buffer normalisation and cached validation, transport
resolution, the per-round send-buffer selection, and — new with the fault
fabric — the reliability loop: every round runs through a retry harness
that consults the installed fault layer at round *entry* (before any
message is posted, so a local retry never desynchronises collective
matching), backs off per the :class:`~repro.faults.ReliabilityPolicy`, and
records completed rounds in an :class:`ExchangeProgress` so a failed
exchange can be resumed without re-running finished rounds.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..faults.injector import FAULTS
from ..faults.policy import ReliabilityPolicy
from ..mpisim.comm import TRANSPORT_PACKED, Communicator
from ..mpisim.errors import RetriesExhaustedError, TransientFaultError
from ..mpisim.request import Request, wait_all
from ..obs.tracer import TRACER
from .descriptor import DataDescriptor
from .mapping import LocalMapping
from .packing import check_buffers_cached
from .schedule import RoundSchedule, collective_preferred

#: Environment override for the default backend (e.g. ``DDR_BACKEND=auto``).
ENV_BACKEND = "DDR_BACKEND"

Buffers = Union[np.ndarray, Sequence[np.ndarray], None]


@dataclass
class ExchangeProgress:
    """Resumable record of one exchange: which rounds finished, what retried.

    ``execute`` returns one of these; passing it back in after a failure
    resumes the exchange, skipping every round already in ``completed``.
    Skipping is safe because a round is recorded only after *this rank*
    finished all its sends and receives for the round, and round faults are
    injected strictly at round entry — a recorded round left no partner
    half-served.
    """

    #: Round indices this rank has fully completed.
    completed: set[int] = field(default_factory=set)
    #: round index -> number of entry retries it took to get through.
    retries: dict[int, int] = field(default_factory=dict)
    #: Tag epoch this exchange's direct-round messages are stamped with.
    #: Assigned on the first ``execute`` call and *reused* on resume, so
    #: messages already in flight from the failed attempt still match.
    tag_epoch: Optional[int] = None

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def record_retry(self, round_index: int) -> None:
        self.retries[round_index] = self.retries.get(round_index, 0) + 1


def normalise_own(data_own: Buffers) -> list[np.ndarray]:
    """Accept one array, a sequence, or ``None`` for the owned-chunk buffers."""
    if data_own is None:
        return []
    if isinstance(data_own, np.ndarray):
        return [data_own]
    return list(data_own)


def mapping_from_descriptor(descriptor: DataDescriptor) -> LocalMapping:
    """The descriptor's attached mapping, or the canonical lifecycle error."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError(
            "DDR_SetupDataMapping must be called before DDR_ReorganizeData"
        )
    return mapping


class ExchangeEngine:
    """Base class: shared validation/staging; subclasses run one round."""

    name: str = "abstract"

    def execute(
        self,
        comm: Communicator,
        mapping: LocalMapping,
        data_own: Buffers,
        data_need: Optional[np.ndarray],
        transport: Optional[str] = None,
        reliability: Optional[ReliabilityPolicy] = None,
        progress: Optional[ExchangeProgress] = None,
    ) -> ExchangeProgress:
        """Redistribute: fill ``data_need`` from everyone's ``data_own``.

        Collective over ``comm`` — every rank must call with the same
        engine and transport.  Repeat calls with the same arrays skip
        buffer revalidation (the mapping caches the accepted set) and, on
        the zero-copy transport, allocate no staging arrays at all.

        ``reliability`` configures the round retry harness (defaults to the
        installed fault layer's policy, else ``ReliabilityPolicy()``).
        ``progress`` resumes a previously failed exchange: rounds already
        in ``progress.completed`` are skipped.  The (possibly fresh)
        progress record is returned, fully populated on success.
        """
        mapping.check_usable(comm)
        own, need = check_buffers_cached(
            mapping.plan,
            mapping.dtype,
            normalise_own(data_own),
            data_need,
            mapping.components,
            mapping.buffer_cache,
        )
        # "Direct" here means: the self-lane may copy straight between the
        # user's buffers, and P2P sends request rendezvous.  True for both
        # zerocopy and shm (the self lane never leaves the process either
        # way); a rendezvous request under shm simply degrades to an shm-
        # staged eager send inside ``Isend``.
        zero_copy = comm.resolve_transport(transport) != TRANSPORT_PACKED
        policy = reliability if reliability is not None else FAULTS.policy
        if progress is None:
            progress = ExchangeProgress()
        if progress.tag_epoch is None:
            progress.tag_epoch = mapping.next_tag_epoch()
        nrounds = max(1, len(mapping.rounds))
        rank = comm.world_rank_of(comm.rank)
        if not TRACER.enabled:
            for rnd in mapping.rounds:
                if rnd.index in progress.completed:
                    continue
                sendbuf: Optional[np.ndarray] = None
                if rnd.chunk_index is not None:
                    sendbuf = own[rnd.chunk_index]
                self._run_round_reliable(
                    comm, rnd, sendbuf, need, transport, zero_copy,
                    rank, policy, progress,
                    progress.tag_epoch * nrounds + rnd.index,
                )
            return progress
        # Traced path: one span per exchange, one per round.  The round span
        # carries the wire protocol actually used (AutoEngine's per-round
        # decision becomes visible here), lane count, and byte volumes.
        with TRACER.span(
            "ddr.exchange",
            rank=rank,
            backend=self.name,
            rounds=len(mapping.rounds),
            transport=comm.resolve_transport(transport),
            resumed=len(progress.completed),
        ):
            for rnd in mapping.rounds:
                if rnd.index in progress.completed:
                    continue
                traced_sendbuf: Optional[np.ndarray] = None
                if rnd.chunk_index is not None:
                    traced_sendbuf = own[rnd.chunk_index]
                with TRACER.span(
                    "ddr.round",
                    rank=rank,
                    round=rnd.index,
                    backend=self.round_backend(rnd),
                    lanes=len(rnd.sends) + len(rnd.recvs),
                    nbytes=rnd.bytes_out,
                    bytes_in=rnd.bytes_in,
                    max_partners=rnd.max_partners,
                ):
                    self._run_round_reliable(
                        comm, rnd, traced_sendbuf, need, transport, zero_copy,
                        rank, policy, progress,
                        progress.tag_epoch * nrounds + rnd.index,
                    )
        return progress

    def _run_round_reliable(
        self,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
        zero_copy: bool,
        rank: int,
        policy: ReliabilityPolicy,
        progress: ExchangeProgress,
        tag: int,
    ) -> None:
        """One round through the retry harness; records completion.

        Round-entry faults (:class:`TransientFaultError` from the fault
        layer's ``on_round_start`` hook) fire before any message of the
        round is posted, so retrying here is purely local: peers never see
        a half-executed attempt and collective matching stays aligned.
        Failures *inside* a round (timeouts, corruption, crashes) are not
        collectively safe to retry and propagate unchanged.
        """
        attempt = 0
        while True:
            try:
                if FAULTS.active:
                    FAULTS.on_round_start(rank, rnd.index, attempt)
                self.run_round(comm, rnd, sendbuf, need, transport, zero_copy, tag)
            except TransientFaultError as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    raise RetriesExhaustedError(
                        f"rank {rank} round {rnd.index}: still failing after "
                        f"{policy.max_retries} retries: {exc}"
                    ) from exc
                progress.record_retry(rnd.index)
                backoff = policy.backoff_s(attempt)
                if TRACER.enabled:
                    with TRACER.span(
                        "fault.round_retry",
                        rank=rank, round=rnd.index,
                        attempt=attempt, backoff_s=backoff,
                    ):
                        time.sleep(backoff)
                else:
                    time.sleep(backoff)
            else:
                progress.completed.add(rnd.index)
                return

    def round_backend(self, rnd: RoundSchedule) -> str:
        """The wire protocol this engine uses for ``rnd`` (trace attribute)."""
        return self.name

    def run_round(
        self,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
        zero_copy: bool,
        tag: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    # -- shared round primitives --------------------------------------------

    @staticmethod
    def _collective_round(
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        transport: Optional[str],
    ) -> None:
        comm.Alltoallw(sendbuf, rnd.sendtypes(), need, rnd.recvtypes(), transport=transport)

    @staticmethod
    def _self_copy(
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
    ) -> None:
        send = rnd.self_send
        if send is None or send.datatype is None or send.datatype.size_elements() == 0:
            return
        recv = rnd.self_recv
        assert sendbuf is not None and need is not None
        assert recv is not None and recv.datatype is not None
        if zero_copy and not np.may_share_memory(sendbuf, need):
            send.datatype.copy_into(sendbuf, need, recv.datatype)
        else:
            recv.datatype.unpack(need, send.datatype.pack(sendbuf))

    @classmethod
    def _direct_round(
        cls,
        comm: Communicator,
        rnd: RoundSchedule,
        sendbuf: Optional[np.ndarray],
        need: Optional[np.ndarray],
        zero_copy: bool,
        tag: Optional[int] = None,
    ) -> None:
        # Self-transfer first, without touching the mailbox.
        cls._self_copy(rnd, sendbuf, need, zero_copy)

        if tag is None:
            tag = rnd.index

        # Every receive is posted before any send: a (source, round) pair
        # carries at most one message (a source drains at most one chunk per
        # round) and the tag is unique per (exchange epoch, round), so
        # matching is exact across repeated exchanges through the same
        # mapping — a message lost from one exchange can never be satisfied
        # by the next one's — and no rank blocks on arrival order.
        recv_requests: list[Request] = []
        for lane in rnd.recvs:
            if lane.datatype is None or lane.datatype.size_elements() == 0:
                continue
            assert need is not None
            recv_requests.append(
                comm.Irecv(need, lane.peer, tag=tag, datatype=lane.datatype)
            )

        send_requests: list[Request] = []
        for lane in rnd.sends:
            if lane.datatype is None or lane.datatype.size_elements() == 0:
                continue
            assert sendbuf is not None
            send_requests.append(
                comm.Isend(
                    sendbuf, lane.peer, tag=tag, datatype=lane.datatype,
                    rendezvous=zero_copy,
                )
            )

        wait_all(recv_requests)
        # Rendezvous sends hold the buffer live until the peer has copied;
        # the round boundary is where that guarantee must be settled.
        wait_all(send_requests)


class AlltoallwEngine(ExchangeEngine):
    """Dense collective backend: one ``Alltoallw`` per round (paper §III-C)."""

    name = "alltoallw"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        self._collective_round(comm, rnd, sendbuf, need, transport)


class P2PEngine(ExchangeEngine):
    """Direct-send backend (paper §V): only actual partners communicate."""

    name = "p2p"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        self._direct_round(comm, rnd, sendbuf, need, zero_copy, tag)


class AutoEngine(ExchangeEngine):
    """Plan-driven per-round selection: dense -> collective, sparse -> direct.

    The decision keys on ``rnd.max_partners`` — the busiest rank's partner
    count for the round, computed from the global plan at setup time — so
    all ranks agree on each round's wire protocol with no negotiation.
    """

    name = "auto"

    def run_round(self, comm, rnd, sendbuf, need, transport, zero_copy, tag=None) -> None:
        if collective_preferred(rnd.max_partners, rnd.nprocs):
            self._collective_round(comm, rnd, sendbuf, need, transport)
        else:
            self._direct_round(comm, rnd, sendbuf, need, zero_copy, tag)

    def round_backend(self, rnd: RoundSchedule) -> str:
        """Per-round choice — the trace shows which protocol auto selected."""
        if collective_preferred(rnd.max_partners, rnd.nprocs):
            return "alltoallw"
        return "p2p"

    @staticmethod
    def choices(mapping: LocalMapping) -> list[str]:
        """Per-round engine this mapping will route through (for inspection)."""
        return mapping.schedule.engine_choices()


ENGINES: dict[str, ExchangeEngine] = {
    engine.name: engine
    for engine in (AlltoallwEngine(), P2PEngine(), AutoEngine())
}


def get_engine(name: str) -> ExchangeEngine:
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose one of {sorted(ENGINES)}"
        ) from None


def default_backend() -> str:
    """The process-wide default engine: ``DDR_BACKEND`` env var, else alltoallw."""
    value = os.environ.get(ENV_BACKEND)
    if value is None:
        return "alltoallw"
    if value not in ENGINES:
        raise ValueError(
            f"{ENV_BACKEND}={value!r} is not a backend; choose one of {sorted(ENGINES)}"
        )
    return value
