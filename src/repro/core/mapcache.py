"""A bounded LRU cache of DDR mappings keyed by consumer layout.

The serving hub hands every consumer its own redistribution — but thousands
of viewers share a handful of layouts (the same ROI at the same mip level),
so the schedule for a layout should be built exactly once and reused.  This
cache holds that producer-side state: canonical layout key -> the tuple of
:class:`~repro.core.mapping.LocalMapping` handles that satisfy it.

Boundedness is the point (mappings carry per-mapping ``BufferCache`` /
``StagingPool`` state, so an unbounded cache grows without limit as layouts
churn): the cache keeps at most ``max_entries`` layouts, evicting the least
recently used and *invalidating* its mappings — which drops their cached
buffers and staging arrays — so evicted layouts release their memory
immediately instead of waiting for the garbage collector.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Sequence

from .mapping import LocalMapping

__all__ = ["MappingCache"]


class MappingCache:
    """LRU ``layout key -> tuple[LocalMapping, ...]`` with invalidating
    eviction.  Not thread-safe: callers serialize access (the hub publishes
    frames from one thread)."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[Hashable, tuple[LocalMapping, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(
        self,
        key: Hashable,
        build: Callable[[], Sequence[LocalMapping]],
    ) -> tuple[LocalMapping, ...]:
        """The cached mappings for ``key``, building (and caching) on miss.

        ``build`` runs only on a miss and must return the mappings that
        satisfy the layout; the result is kept until evicted.  A mapping
        that was invalidated elsewhere (``StaleMappingError`` risk) is
        treated as a miss and rebuilt.
        """
        entry = self._entries.get(key)
        if entry is not None and not any(m.stale for m in entry):
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        if entry is not None:
            del self._entries[key]
        self.misses += 1
        entry = tuple(build())
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            _, victims = self._entries.popitem(last=False)
            self.evictions += 1
            for mapping in victims:
                mapping.invalidate()
        return entry

    def drop(self, key: Hashable) -> bool:
        """Invalidate and remove one layout; True if it was cached."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        for mapping in entry:
            mapping.invalidate()
        return True

    def clear(self) -> None:
        """Invalidate and remove every cached layout."""
        for entry in self._entries.values():
            for mapping in entry:
                mapping.invalidate()
        self._entries.clear()

    def pool_bytes(self) -> int:
        """Total staging-pool bytes held by the cached mappings — the
        number the hub's bounded-memory assertions watch."""
        return sum(
            mapping.pool.current_bytes
            for entry in self._entries.values()
            for mapping in entry
        )

    def pool_peak_bytes(self) -> int:
        """Staging-pool high-water mark summed over the cached mappings.

        Peaks persist across :meth:`~repro.utils.arrays.StagingPool.clear`
        but die with the mapping, so evicting a layout forgets its peak —
        this is "peak of what is currently cached", the right denominator
        for sizing ``DDR_MEM_BUDGET_MB`` against the live working set.
        """
        return sum(
            mapping.pool.peak_bytes
            for entry in self._entries.values()
            for mapping in entry
        )

    def cache_bytes(self) -> int:
        """User-buffer bytes the mappings' :class:`BufferCache`\\ s pin."""
        return sum(
            mapping.buffer_cache.resident_bytes
            for entry in self._entries.values()
            for mapping in entry
        )

    def cache_peak_bytes(self) -> int:
        """Buffer-cache high-water mark summed over the cached mappings."""
        return sum(
            mapping.buffer_cache.peak_bytes
            for entry in self._entries.values()
            for mapping in entry
        )

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "pool_bytes": self.pool_bytes(),
            "pool_peak_bytes": self.pool_peak_bytes(),
            "cache_bytes": self.cache_bytes(),
            "cache_peak_bytes": self.cache_peak_bytes(),
        }
