"""``DDR_ReorganizeData``: execute the exchange (paper §III-C).

One ``Alltoallw`` per round; round ``c`` drains chunk slot ``c`` on every
rank.  Because the setup step prebuilt all subarray datatypes, this function
is safe to call repeatedly on *new data with the same layout* — the paper's
"dynamic data" property used by the in-transit use case.

This module is the C-style entry point for the collective backend; the
execution logic itself lives in :class:`repro.core.engine.AlltoallwEngine`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mpisim.comm import Communicator
from .descriptor import DataDescriptor
from .engine import Buffers, get_engine, mapping_from_descriptor
from .mapping import LocalMapping

# Back-compat re-export: callers historically imported the buffer normaliser
# from here.
from .engine import normalise_own as _normalise_own  # noqa: F401


def reorganize_data(
    comm: Communicator,
    descriptor: DataDescriptor,
    data_own: Buffers,
    data_need: Optional[np.ndarray],
    transport: Optional[str] = None,
) -> None:
    """Redistribute: fill ``data_need`` from everyone's ``data_own`` buffers.

    ``data_own`` is one buffer per owned chunk (a single array is accepted
    for the common one-chunk case); ``data_need`` is the single buffer for
    this rank's needed box.  Buffers may be flat or chunk-shaped but must be
    C-contiguous and exactly sized.

    Repeat calls with the same arrays skip buffer revalidation (the mapping
    caches the accepted set) and — on the default zero-copy transport —
    allocate no staging arrays at all.  ``transport`` forces ``"packed"``
    or ``"zerocopy"`` for this call; ``None`` uses the communicator/process
    default.
    """
    mapping = mapping_from_descriptor(descriptor)
    get_engine("alltoallw").execute(comm, mapping, data_own, data_need, transport)


def reorganize_rounds(descriptor: DataDescriptor) -> int:
    """Number of ``Alltoallw`` calls one :func:`reorganize_data` will make."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError("mapping not set up")
    return mapping.nrounds
