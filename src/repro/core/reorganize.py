"""``DDR_ReorganizeData``: execute the exchange (paper §III-C).

One ``Alltoallw`` per round; round ``c`` drains chunk slot ``c`` on every
rank.  Because the setup step prebuilt all subarray datatypes, this function
is safe to call repeatedly on *new data with the same layout* — the paper's
"dynamic data" property used by the in-transit use case.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..mpisim.comm import Communicator
from .descriptor import DataDescriptor
from .mapping import LocalMapping
from .packing import check_buffers_cached


def _normalise_own(data_own: Union[np.ndarray, Sequence[np.ndarray], None]) -> list[np.ndarray]:
    if data_own is None:
        return []
    if isinstance(data_own, np.ndarray):
        return [data_own]
    return list(data_own)


def reorganize_data(
    comm: Communicator,
    descriptor: DataDescriptor,
    data_own: Union[np.ndarray, Sequence[np.ndarray], None],
    data_need: Optional[np.ndarray],
    transport: Optional[str] = None,
) -> None:
    """Redistribute: fill ``data_need`` from everyone's ``data_own`` buffers.

    ``data_own`` is one buffer per owned chunk (a single array is accepted
    for the common one-chunk case); ``data_need`` is the single buffer for
    this rank's needed box.  Buffers may be flat or chunk-shaped but must be
    C-contiguous and exactly sized.

    Repeat calls with the same arrays skip buffer revalidation (the mapping
    caches the accepted set) and — on the default zero-copy transport —
    allocate no staging arrays at all.  ``transport`` forces ``"packed"``
    or ``"zerocopy"`` for this call; ``None`` uses the communicator/process
    default.
    """
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError(
            "DDR_SetupDataMapping must be called before DDR_ReorganizeData"
        )
    if comm.size != mapping.nprocs or comm.rank != mapping.rank:
        raise ValueError(
            f"communicator (rank {comm.rank}/{comm.size}) does not match the "
            f"mapping (rank {mapping.rank}/{mapping.nprocs})"
        )

    own = _normalise_own(data_own)
    own, need = check_buffers_cached(
        mapping.plan,
        descriptor.dtype,
        own,
        data_need,
        descriptor.components,
        mapping.buffer_cache,
    )

    for round_types in mapping.rounds:
        sendbuf: Optional[np.ndarray] = None
        if round_types.chunk_index is not None:
            sendbuf = own[round_types.chunk_index]
        comm.Alltoallw(
            sendbuf,
            round_types.sendtypes,
            need,
            round_types.recvtypes,
            transport=transport,
        )


def reorganize_rounds(descriptor: DataDescriptor) -> int:
    """Number of ``Alltoallw`` calls one :func:`reorganize_data` will make."""
    mapping = descriptor.plan
    if not isinstance(mapping, LocalMapping):
        raise RuntimeError("mapping not set up")
    return mapping.nrounds
