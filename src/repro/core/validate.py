"""Validation of DDR mapping preconditions (paper §III-B).

The paper requires the *sent* side to be mutually exclusive and complete —
no cell owned twice, every cell of the domain owned by someone — while the
*received* side may overlap and leave gaps.  These checks catch caller bugs
before they become silent data corruption, and are cheap enough (sweep along
the most-spread axis) to leave on by default.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .box import Box


class MappingValidationError(ValueError):
    """The caller's chunk description violates a DDR precondition."""


def infer_domain(owns: Sequence[Sequence[Box]]) -> Optional[Box]:
    """Bounding box of all owned chunks (the overall data domain)."""
    bounds: Optional[Box] = None
    for chunks in owns:
        for box in chunks:
            if box.is_empty():
                continue
            bounds = box if bounds is None else bounds.union_bounds(box)
    return bounds


def check_send_coverage(
    owns: Sequence[Sequence[Box]], domain: Optional[Box] = None
) -> Box:
    """Verify owned chunks exactly tile ``domain``; returns the domain.

    Raises :class:`MappingValidationError` on overlap (two owners of one
    cell) or incompleteness (unowned cells).  Uses a sweep along the axis of
    greatest spread so slab-style decompositions validate in near-linear
    time rather than O(n^2).
    """
    boxes: list[tuple[int, int, Box]] = []  # (rank, chunk_index, box)
    for rank, chunks in enumerate(owns):
        for index, box in enumerate(chunks):
            if not box.is_empty():
                boxes.append((rank, index, box))
    if not boxes:
        raise MappingValidationError("no rank owns any data")

    if domain is None:
        domain = infer_domain(owns)
        assert domain is not None

    total = sum(box.volume() for _, _, box in boxes)
    if total > domain.volume():
        _find_overlap(boxes)  # raises with the offending pair
        raise MappingValidationError(
            f"owned volume {total} exceeds domain volume {domain.volume()}"
        )
    if total < domain.volume():
        raise MappingValidationError(
            f"owned chunks cover {total} cells but the domain has "
            f"{domain.volume()}; coverage is incomplete"
        )

    for _, _, box in boxes:
        if not domain.contains_box(box):
            raise MappingValidationError(f"chunk {box} extends outside domain {domain}")

    # Volumes match and everything is inside the domain.  Disjointness is
    # still required: equal volume with both gaps and overlaps is possible.
    _find_overlap(boxes)
    return domain


def _find_overlap(boxes: list[tuple[int, int, Box]]) -> None:
    """Raise if any two boxes overlap (sweep on the most-spread axis)."""
    ndim = boxes[0][2].ndim
    spreads = []
    for axis in range(ndim):
        lo = min(box.offset[axis] for _, _, box in boxes)
        hi = max(box.end[axis] for _, _, box in boxes)
        spreads.append(hi - lo)
    axis = max(range(ndim), key=lambda a: spreads[a])

    ordered = sorted(boxes, key=lambda item: item[2].offset[axis])
    active: list[tuple[int, int, Box]] = []
    for rank, index, box in ordered:
        start = box.offset[axis]
        active = [item for item in active if item[2].end[axis] > start]
        for other_rank, other_index, other in active:
            hit = box.intersect(other)
            if hit is not None:
                raise MappingValidationError(
                    f"rank {other_rank} chunk {other_index} ({other}) overlaps "
                    f"rank {rank} chunk {index} ({box}) at {hit}"
                )
        active.append((rank, index, box))


def check_receives_within_domain(
    needs: Sequence[Optional[Box]], domain: Box
) -> None:
    """Receives may overlap each other and may be partial, but a request for
    cells nobody owns can never be satisfied — reject it here."""
    for rank, need in enumerate(needs):
        if need is None or need.is_empty():
            continue
        if not domain.contains_box(need):
            raise MappingValidationError(
                f"rank {rank} requests {need}, which leaves the owned domain {domain}"
            )
