"""DDR core: the paper's contribution (descriptor, mapping, reorganization)."""

from .api import (
    DDR_NewDataDescriptor,
    DDR_ReorganizeData,
    DDR_SetupDataMapping,
    Redistributor,
)
from .box import Box, boxes_from_flat, intersect_many
from .halo import GhostExchanger, inflate_box
from .descriptor import (
    DATA_TYPE_1D,
    DATA_TYPE_2D,
    DATA_TYPE_3D,
    DataDescriptor,
    DataLayout,
)
from .mapping import LocalMapping, plan_from_declarations, setup_data_mapping
from .packing import BufferCache, check_buffers, check_buffers_cached
from .p2p import message_count_p2p, reorganize_data_p2p
from .plan import GlobalPlan, RankPlan, RecvEntry, SendEntry, compute_global_plan
from .reorganize import reorganize_data, reorganize_rounds
from .serialize import (
    attach_loaded_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from .validate import MappingValidationError, check_send_coverage, infer_domain

__all__ = [
    "Box",
    "BufferCache",
    "DATA_TYPE_1D",
    "DATA_TYPE_2D",
    "DATA_TYPE_3D",
    "DDR_NewDataDescriptor",
    "DDR_ReorganizeData",
    "DDR_SetupDataMapping",
    "DataDescriptor",
    "DataLayout",
    "GhostExchanger",
    "GlobalPlan",
    "LocalMapping",
    "MappingValidationError",
    "RankPlan",
    "RecvEntry",
    "Redistributor",
    "SendEntry",
    "attach_loaded_plan",
    "boxes_from_flat",
    "check_buffers",
    "check_buffers_cached",
    "check_send_coverage",
    "compute_global_plan",
    "infer_domain",
    "inflate_box",
    "intersect_many",
    "load_plan",
    "message_count_p2p",
    "plan_from_declarations",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
    "reorganize_data",
    "reorganize_data_p2p",
    "reorganize_rounds",
    "setup_data_mapping",
]
