"""DDR core: the paper's contribution (descriptor, mapping, reorganization)."""

from .api import (
    DDR_NewDataDescriptor,
    DDR_ReorganizeData,
    DDR_SetupDataMapping,
    Redistributor,
    ResizeResult,
)
from .box import Box, boxes_from_flat, intersect_many
from .halo import GhostExchanger, inflate_box
from .descriptor import (
    DATA_TYPE_1D,
    DATA_TYPE_2D,
    DATA_TYPE_3D,
    DataDescriptor,
    DataLayout,
)
from .engine import (
    ENGINES,
    AlltoallwEngine,
    AutoEngine,
    BoundedEngine,
    ExchangeEngine,
    ExchangeProgress,
    P2PEngine,
    default_backend,
    get_engine,
    round_staging_estimate,
)
from .mapcache import MappingCache
from .mapping import (
    LocalMapping,
    StaleMappingError,
    plan_from_declarations,
    setup_data_mapping,
)
from .packing import BufferCache, check_buffers, check_buffers_cached
from .p2p import message_count_p2p, reorganize_data_p2p
from .plan import GlobalPlan, RankPlan, RecvEntry, SendEntry, compute_global_plan
from .reorganize import reorganize_data, reorganize_rounds
from .schedule import (
    DEFAULT_BOUNDED_CHUNK_BYTES,
    MIN_CHUNK_BYTES,
    PIECE_INFLIGHT,
    ExchangeSchedule,
    Lane,
    RoundSchedule,
    build_schedule,
    chunk_bytes_for,
    collective_preferred,
    global_schedules,
    round_max_partners,
    round_peak_stats,
)
from .serialize import (
    attach_loaded_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from .validate import MappingValidationError, check_send_coverage, infer_domain

__all__ = [
    "DEFAULT_BOUNDED_CHUNK_BYTES",
    "ENGINES",
    "MIN_CHUNK_BYTES",
    "PIECE_INFLIGHT",
    "AlltoallwEngine",
    "AutoEngine",
    "BoundedEngine",
    "Box",
    "BufferCache",
    "DATA_TYPE_1D",
    "DATA_TYPE_2D",
    "DATA_TYPE_3D",
    "DDR_NewDataDescriptor",
    "DDR_ReorganizeData",
    "DDR_SetupDataMapping",
    "DataDescriptor",
    "DataLayout",
    "ExchangeEngine",
    "ExchangeProgress",
    "ExchangeSchedule",
    "GhostExchanger",
    "GlobalPlan",
    "Lane",
    "LocalMapping",
    "MappingCache",
    "MappingValidationError",
    "P2PEngine",
    "RankPlan",
    "RecvEntry",
    "Redistributor",
    "ResizeResult",
    "RoundSchedule",
    "SendEntry",
    "StaleMappingError",
    "attach_loaded_plan",
    "boxes_from_flat",
    "build_schedule",
    "check_buffers",
    "check_buffers_cached",
    "check_send_coverage",
    "chunk_bytes_for",
    "collective_preferred",
    "compute_global_plan",
    "default_backend",
    "get_engine",
    "global_schedules",
    "infer_domain",
    "inflate_box",
    "intersect_many",
    "load_plan",
    "message_count_p2p",
    "plan_from_declarations",
    "plan_from_dict",
    "plan_to_dict",
    "round_max_partners",
    "round_peak_stats",
    "round_staging_estimate",
    "save_plan",
    "reorganize_data",
    "reorganize_data_p2p",
    "reorganize_rounds",
    "setup_data_mapping",
]
