"""Persistence for computed plans.

At production scale the geometric planning in ``DDR_SetupDataMapping`` is
non-trivial (Table III's 216-rank round-robin schedule intersects 4096
chunks with 216 needs).  Since the mapping depends only on the declared
geometry, it can be computed once, saved as JSON, and reloaded by later
runs — an engineering extension the paper's "setup once" design invites.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .box import Box
from .descriptor import DataDescriptor
from .mapping import LocalMapping, attach_mapping, local_mapping_from_global
from .plan import GlobalPlan, RankPlan, RecvEntry, SendEntry

FORMAT_VERSION = 1


def _box_to_list(box: Optional[Box]) -> Optional[list[list[int]]]:
    if box is None:
        return None
    return [list(box.offset), list(box.dims)]


def _box_from_list(data: Optional[list]) -> Optional[Box]:
    if data is None:
        return None
    offset, dims = data
    return Box(tuple(offset), tuple(dims))


def plan_to_dict(plan: GlobalPlan) -> dict:
    """Lossless JSON-safe representation of a :class:`GlobalPlan`."""
    return {
        "version": FORMAT_VERSION,
        "nprocs": plan.nprocs,
        "ndims": plan.ndims,
        "element_size": plan.element_size,
        "nrounds": plan.nrounds,
        "ranks": [
            {
                "rank": p.rank,
                "own": [_box_to_list(b) for b in p.own_chunks],
                "need": _box_to_list(p.need),
                "sends": [
                    [s.round, s.dest, s.chunk_index, _box_to_list(s.chunk),
                     _box_to_list(s.overlap)]
                    for s in p.sends
                ],
                "recvs": [
                    [r.round, r.source, _box_to_list(r.overlap)] for r in p.recvs
                ],
            }
            for p in plan.rank_plans
        ],
    }


def plan_from_dict(data: dict) -> GlobalPlan:
    """Inverse of :func:`plan_to_dict`; validates the format version."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version {version!r}")
    rank_plans = []
    for entry in data["ranks"]:
        sends = []
        for rnd, dest, chunk_index, chunk, overlap in entry["sends"]:
            if rnd != chunk_index:
                raise ValueError(
                    f"corrupt plan: send round {rnd} != chunk index {chunk_index} "
                    "(round c drains chunk slot c)"
                )
            sends.append(
                SendEntry(dest, chunk_index, _box_from_list(chunk), _box_from_list(overlap))
            )
        recvs = [
            RecvEntry(rnd, source, _box_from_list(overlap))
            for rnd, source, overlap in entry["recvs"]
        ]
        rank_plans.append(
            RankPlan(
                rank=entry["rank"],
                own_chunks=[_box_from_list(b) for b in entry["own"]],
                need=_box_from_list(entry["need"]),
                sends=sends,
                recvs=recvs,
            )
        )
    return GlobalPlan(
        nprocs=int(data["nprocs"]),
        ndims=int(data["ndims"]),
        element_size=int(data["element_size"]),
        rank_plans=rank_plans,
        nrounds=int(data["nrounds"]),
    )


def save_plan(path, plan: GlobalPlan) -> None:
    """Write a plan to ``path`` as JSON."""
    Path(path).write_text(json.dumps(plan_to_dict(plan)))


def load_plan(path) -> GlobalPlan:
    """Read a plan written by :func:`save_plan`."""
    return plan_from_dict(json.loads(Path(path).read_text()))


def attach_loaded_plan(
    descriptor: DataDescriptor, plan: GlobalPlan, rank: int
) -> LocalMapping:
    """Install a precomputed plan on a descriptor (replacing the collective
    setup step) and return the rank's :class:`LocalMapping`."""
    if plan.nprocs != descriptor.nprocs:
        raise ValueError(
            f"plan was computed for {plan.nprocs} ranks, descriptor declares "
            f"{descriptor.nprocs}"
        )
    if plan.ndims != descriptor.ndims:
        raise ValueError(
            f"plan is {plan.ndims}-D, descriptor declares {descriptor.ndims}-D"
        )
    if plan.element_size != descriptor.element_size:
        raise ValueError(
            f"plan element size {plan.element_size} != descriptor "
            f"{descriptor.element_size}"
        )
    local = local_mapping_from_global(plan, None, rank, descriptor)
    attach_mapping(descriptor, local)
    return local
