"""Visualization primitives: colormaps, scalar-field rendering, PPM I/O."""

from .colormaps import (
    BLUE_WHITE_RED,
    COLORMAPS,
    Colormap,
    GRAYSCALE,
    TOOTH,
    normalize,
)
from .image import assemble_tiles, render_scalar_field
from .ppm import read_ppm, write_ppm

__all__ = [
    "BLUE_WHITE_RED",
    "COLORMAPS",
    "Colormap",
    "GRAYSCALE",
    "TOOTH",
    "assemble_tiles",
    "normalize",
    "read_ppm",
    "render_scalar_field",
    "write_ppm",
]
