"""Binary PPM (P6) image I/O — the lossless sibling of the JPEG output path.

Used by examples to dump exact frames and by tests as a reference format
when asserting on the JPEG codec.
"""

from __future__ import annotations

import numpy as np


def write_ppm(path_or_file, image: np.ndarray) -> int:
    """Write an ``(h, w, 3)`` uint8 image as binary PPM; returns bytes written."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError(f"expected (h, w, 3) uint8, got {image.shape} {image.dtype}")
    header = f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode()
    payload = header + image.tobytes()
    if hasattr(path_or_file, "write"):
        return path_or_file.write(payload)
    with open(path_or_file, "wb") as handle:
        return handle.write(payload)


def read_ppm(path_or_file) -> np.ndarray:
    """Read a binary PPM (P6) into an ``(h, w, 3)`` uint8 array."""
    if hasattr(path_or_file, "read"):
        data = path_or_file.read()
    else:
        with open(path_or_file, "rb") as handle:
            data = handle.read()

    # Header: magic, width, height, maxval — whitespace/comment separated.
    tokens: list[bytes] = []
    pos = 0
    while len(tokens) < 4:
        if pos >= len(data):
            raise ValueError("truncated PPM header")
        ch = data[pos : pos + 1]
        if ch == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
        elif ch.isspace():
            pos += 1
        else:
            start = pos
            while pos < len(data) and not data[pos : pos + 1].isspace():
                pos += 1
            tokens.append(data[start:pos])
    if tokens[0] != b"P6":
        raise ValueError(f"not a binary PPM: magic {tokens[0]!r}")
    width, height, maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    pos += 1  # single whitespace after maxval
    expected = width * height * 3
    pixels = np.frombuffer(data[pos : pos + expected], dtype=np.uint8)
    if pixels.size != expected:
        raise ValueError(f"payload has {pixels.size} bytes, expected {expected}")
    return pixels.reshape(height, width, 3).copy()
