"""Colormaps for the analysis applications.

The paper's LBM use case renders vorticity "using a blue-white-red
colormap" (§IV-B); the tooth DVR figure uses a dark-to-warm ramp (Figure 2
right).  Colormaps are piecewise-linear in RGB over control points on
[0, 1] and vectorise over arbitrary array shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Colormap:
    """Piecewise-linear RGB colormap over [0, 1]."""

    name: str
    points: tuple[tuple[float, tuple[float, float, float]], ...]

    def __post_init__(self) -> None:
        values = [v for v, _ in self.points]
        if len(values) < 2:
            raise ValueError("a colormap needs at least two control points")
        if values != sorted(values) or values[0] != 0.0 or values[-1] != 1.0:
            raise ValueError("control points must ascend from 0.0 to 1.0")

    def __call__(self, scalars: np.ndarray) -> np.ndarray:
        """Map scalars in [0, 1] to float RGB in [0, 1]; shape ``(*s, 3)``."""
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        xs = np.array([v for v, _ in self.points])
        channels = np.array([c for _, c in self.points])  # (n, 3)
        out = np.empty(s.shape + (3,))
        for ch in range(3):
            out[..., ch] = np.interp(s, xs, channels[:, ch])
        return out

    def to_uint8(self, scalars: np.ndarray) -> np.ndarray:
        """Map scalars in [0, 1] to uint8 RGB."""
        return np.round(self(scalars) * 255.0).astype(np.uint8)


#: The paper's LBM vorticity map: blue (negative) - white (zero) - red (positive).
BLUE_WHITE_RED = Colormap(
    "blue_white_red",
    (
        (0.0, (0.0, 0.0, 1.0)),
        (0.5, (1.0, 1.0, 1.0)),
        (1.0, (1.0, 0.0, 0.0)),
    ),
)

GRAYSCALE = Colormap("grayscale", ((0.0, (0.0, 0.0, 0.0)), (1.0, (1.0, 1.0, 1.0))))

#: Dark -> blue -> amber -> white ramp in the spirit of Figure 2's tooth map.
TOOTH = Colormap(
    "tooth",
    (
        (0.0, (0.0, 0.0, 0.0)),
        (0.25, (0.10, 0.15, 0.45)),
        (0.55, (0.70, 0.45, 0.15)),
        (0.85, (0.95, 0.85, 0.55)),
        (1.0, (1.0, 1.0, 1.0)),
    ),
)

COLORMAPS = {cmap.name: cmap for cmap in (BLUE_WHITE_RED, GRAYSCALE, TOOTH)}


def normalize(
    field: np.ndarray,
    vmin: float | None = None,
    vmax: float | None = None,
    symmetric: bool = False,
) -> np.ndarray:
    """Scale a scalar field to [0, 1].

    ``symmetric=True`` centres zero at 0.5 (vorticity with BLUE_WHITE_RED:
    still fluid renders white, opposite rotations blue/red).
    """
    data = np.asarray(field, dtype=np.float64)
    if symmetric:
        bound = max(abs(float(data.min() if vmin is None else vmin)),
                    abs(float(data.max() if vmax is None else vmax)))
        if bound == 0.0:
            return np.full(data.shape, 0.5)
        return np.clip((data + bound) / (2.0 * bound), 0.0, 1.0)
    lo = float(data.min()) if vmin is None else float(vmin)
    hi = float(data.max()) if vmax is None else float(vmax)
    if hi <= lo:
        return np.zeros(data.shape)
    return np.clip((data - lo) / (hi - lo), 0.0, 1.0)
