"""Scalar field -> RGB image (the LBM analysis application's render step)."""

from __future__ import annotations

import numpy as np

from .colormaps import BLUE_WHITE_RED, Colormap, normalize


def render_scalar_field(
    field: np.ndarray,
    cmap: Colormap = BLUE_WHITE_RED,
    vmin: float | None = None,
    vmax: float | None = None,
    symmetric: bool = True,
) -> np.ndarray:
    """Colormap a 2-D scalar field into a ``(h, w, 3)`` uint8 image.

    Defaults mirror the paper's vorticity rendering: symmetric range with
    zero at white under the blue-white-red map.
    """
    field = np.asarray(field)
    if field.ndim != 2:
        raise ValueError(f"expected 2-D field, got shape {field.shape}")
    return cmap.to_uint8(normalize(field, vmin, vmax, symmetric=symmetric))


def assemble_tiles(
    tiles: list[tuple[tuple[int, int], np.ndarray]], full_shape: tuple[int, int]
) -> np.ndarray:
    """Stitch per-rank image tiles into a full frame.

    ``tiles`` holds ``((y0, x0), rgb_tile)`` pairs; overlapping tiles are
    written in order (last writer wins), matching DDR's receive semantics.
    """
    h, w = full_shape
    frame = np.zeros((h, w, 3), dtype=np.uint8)
    for (y0, x0), tile in tiles:
        th, tw = tile.shape[:2]
        if y0 < 0 or x0 < 0 or y0 + th > h or x0 + tw > w:
            raise ValueError(f"tile at ({y0}, {x0}) of {tile.shape} exceeds {full_shape}")
        frame[y0 : y0 + th, x0 : x0 + tw] = tile
    return frame
