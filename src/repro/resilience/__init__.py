"""Crash survival for redistributions: ULFM-style recovery + buddy checkpoints.

Layers (see DESIGN.md "Resilience"):

* ``repro.mpisim`` supplies the primitives — communicator revocation,
  fault-aware agreement, and ``Comm.shrink()``;
* this package supplies the data plane — :class:`CheckpointPolicy` /
  :class:`BuddyStore` replication (shared-memory backed on the process
  executor via :class:`ShmBuddyStore`) and :class:`ResilientRedistributor`,
  which revokes, agrees, shrinks, adopts lost chunks from checkpoints and
  replays rolled-back epochs when a peer dies mid-exchange — and, through
  the same ``Redistributor.retarget`` path, voluntary elastic resizing
  (``ResilientRedistributor.resize``);
* ``repro.intransit`` builds pipeline reconfiguration on top
  (``PipelineConfig.on_rank_loss`` / ``on_load``).
"""

from .checkpoint import BuddyStore, CheckpointPolicy, shared_store
from .errors import DataLossError, ReconfigurationError
from .redistributor import RESILIENCE_STATS, ResilientRedistributor
from .shmstore import ShmBuddyStore

__all__ = [
    "BuddyStore",
    "CheckpointPolicy",
    "DataLossError",
    "RESILIENCE_STATS",
    "ReconfigurationError",
    "ResilientRedistributor",
    "ShmBuddyStore",
    "shared_store",
]
