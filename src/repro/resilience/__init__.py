"""Crash survival for redistributions: ULFM-style recovery + buddy checkpoints.

Layers (see DESIGN.md "Resilience"):

* ``repro.mpisim`` supplies the primitives — communicator revocation,
  fault-aware agreement, and ``Comm.shrink()``;
* this package supplies the data plane — :class:`CheckpointPolicy` /
  :class:`BuddyStore` replication and :class:`ResilientRedistributor`,
  which revokes, agrees, shrinks, adopts lost chunks from checkpoints and
  replays rolled-back epochs when a peer dies mid-exchange;
* ``repro.intransit`` builds pipeline reconfiguration on top
  (``PipelineConfig.on_rank_loss``).
"""

from .checkpoint import BuddyStore, CheckpointPolicy, shared_store
from .errors import DataLossError, ReconfigurationError
from .redistributor import RESILIENCE_STATS, ResilientRedistributor

__all__ = [
    "BuddyStore",
    "CheckpointPolicy",
    "DataLossError",
    "RESILIENCE_STATS",
    "ReconfigurationError",
    "ResilientRedistributor",
    "shared_store",
]
