"""Crash-surviving wrapper around :class:`repro.core.api.Redistributor`.

``ResilientRedistributor`` runs the same setup/exchange API, but when a
peer rank dies mid-exchange it performs ULFM-style recovery instead of
propagating a hang or an abort:

1. **revoke** the communicator so every survivor blocked in the old
   exchange wakes with a typed error;
2. **agree** (fault-aware, crash-proof: no transport ops) on the union of
   observed dead ranks and the minimum pending epoch across survivors;
3. **shrink** to a dense-ranked survivor communicator;
4. **adopt** the dead ranks' chunks onto deterministic survivors, restore
   their contents from the buddy checkpoint store, and re-run the full
   ``DDR_SetupDataMapping`` over the shrunken communicator (the mapping
   descriptor bakes in ``comm.size``, so a fresh inner
   :class:`Redistributor` is built);
5. **replay** any epochs the slowest survivor rolled back to (self-copies
   in the store supply each rank's historical generation), then retry the
   pending epoch.

A chunk whose owner *and* all buddy holders are dead is unrecoverable: if
any survivor still needs it, recovery raises :class:`DataLossError` naming
the lost boxes; if nobody needs it, the box is dropped from the domain and
the run continues.  A chunk restored from an older epoch than the pending
one (the owner crashed before depositing the current generation) is a
*stale restore*: recovery succeeds but the affected boxes are listed in
``stale_boxes`` so callers can classify the result as degraded rather than
bitwise-correct.

Crash recovery is one instance of a more general operation: *resizing* the
live world.  :meth:`ResilientRedistributor.resize` exposes the voluntary
form — grow onto spawned ranks or shrink onto a prefix, migrating data via
the same components-aware DDR exchange (``Redistributor.resize``) — and
crash recovery is the involuntary form (the new world is the survivor set,
the migration source is the checkpoint store).  Both funnel through
``_resize_world`` + ``Redistributor.retarget``, so there is exactly one
mapping-rebuild lifecycle however the world changes shape.

Epoch discipline: every successful exchange ends with a barrier on the
current communicator, which bounds cross-rank epoch skew to one and lets
``CheckpointPolicy.retain == 2`` cover any replay.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import Redistributor, ResizeResult
from ..core.box import Box
from ..faults.injector import FaultStats
from ..mpisim.comm import Communicator
from ..mpisim.errors import (
    DeadlineError,
    MpiSimError,
    ProcessFailedError,
    RankCrashError,
    RevokedError,
)
from ..obs.tracer import TRACER
from .checkpoint import BuddyStore, CheckpointPolicy, shared_store
from .errors import DataLossError

#: Process-wide recovery counters; absorb into a MetricsRegistry via
#: ``registry.absorb_resilience(RESILIENCE_STATS)``.
RESILIENCE_STATS = FaultStats()


class ResilientRedistributor:
    """Redistributor façade that survives rank crashes mid-exchange.

    Construction arguments mirror :class:`Redistributor`, plus a
    :class:`CheckpointPolicy` and a recovery budget.  The ``comm`` handle
    is *replaced* on every recovery (``self.comm`` is always the current,
    possibly shrunken, communicator) and ``own_boxes`` grows when this
    rank adopts a dead peer's chunks — callers that want bitwise-correct
    output after recovery should re-query ``own_boxes`` each generation
    and supply data for every box.  Callers that keep passing buffers for
    their original boxes only still work: adopted boxes are auto-filled
    from the newest checkpoint, at the cost of those regions going (and
    staying) stale.
    """

    def __init__(
        self,
        comm: Communicator,
        ndims: int,
        dtype: np.dtype,
        *,
        backend: Optional[str] = None,
        components: int = 1,
        transport: Optional[str] = None,
        reliability: Optional[Any] = None,
        policy: Optional[CheckpointPolicy] = None,
        store: Optional[BuddyStore] = None,
        max_recoveries: int = 2,
    ) -> None:
        if max_recoveries < 0:
            raise ValueError(f"max_recoveries must be >= 0, got {max_recoveries}")
        self.comm = comm
        self.ndims = ndims
        self.dtype = np.dtype(dtype)
        self.policy = policy or CheckpointPolicy()
        self.store = store if store is not None else shared_store(comm.fabric)
        self.max_recoveries = max_recoveries
        self._backend = backend
        self._components = components
        self._transport = transport
        self._reliability = reliability
        self._red: Optional[Redistributor] = None
        self.own_boxes: List[Box] = []
        self.need_box: Optional[Box] = None
        # world rank -> declarations, survivor-consistent across recoveries
        self._owns_by_world: dict[int, List[Box]] = {}
        self._needs_by_world: dict[int, Optional[Box]] = {}
        self._epoch = 0
        self.recoveries = 0
        self.adopted_boxes: List[Box] = []
        self.stale_boxes: List[Box] = []

    # -- setup ---------------------------------------------------------------

    def setup(
        self, own: Sequence[Box], need: Optional[Box], validate: bool = True
    ) -> None:
        """Collective mapping setup (``DDR_SetupDataMapping``).

        A crash *during* initial setup is unrecoverable by construction:
        the dead rank never checkpointed anything and the survivors may
        not even know its declarations, so a typed :class:`DataLossError`
        is raised (after revoking the communicator so no survivor hangs).
        """
        self.own_boxes = list(own)
        self.need_box = need
        try:
            self._collective_setup(validate=validate)
        except MpiSimError as exc:
            if isinstance(exc, (RevokedError, ProcessFailedError)):
                self.comm.revoke()
                raise DataLossError(
                    "a rank died during the initial mapping setup, before "
                    "any checkpoint existed; its chunks cannot be recovered"
                ) from exc
            raise

    def _collective_setup(self, validate: bool) -> None:
        if self._red is None:
            self._red = Redistributor(
                self.comm,
                self.ndims,
                self.dtype,
                backend=self._backend,
                components=self._components,
                transport=self._transport,
                reliability=self._reliability,
            )
        else:
            # The shared reconfiguration primitive: crash recovery and
            # voluntary resize both funnel through Redistributor.retarget,
            # so there is one mapping-rebuild path however the communicator
            # changed shape (shrink after a crash, spawn-grow, or split).
            self._red.retarget(self.comm)
        decl = (
            [(box.offset, box.dims) for box in self.own_boxes],
            (self.need_box.offset, self.need_box.dims) if self.need_box else None,
        )
        gathered = self.comm.allgather(decl)
        self._owns_by_world = {}
        self._needs_by_world = {}
        for rank, (own_decl, need_decl) in enumerate(gathered):
            world = self.comm.world_rank_of(rank)
            self._owns_by_world[world] = [Box(o, d) for o, d in own_decl]
            self._needs_by_world[world] = Box(*need_decl) if need_decl else None
        self._red.setup(self.own_boxes, self.need_box, validate=validate)

    # -- exchange ------------------------------------------------------------

    def gather_need(
        self, own_buffers: Any, fill: Any = 0
    ) -> Optional[np.ndarray]:
        """One exchange epoch; recovers from peer crashes transparently.

        ``own_buffers`` may be a single array (one own box) or a sequence
        aligned with a *prefix* of ``own_boxes``; any trailing adopted
        boxes the caller does not supply are filled from checkpoints.
        """
        if self._red is None:
            raise RuntimeError("setup() must be called before gather_need()")
        bufs = self._normalize_buffers(own_buffers)
        pending = self._epoch + 1
        steps: List[Tuple[str, int]] = [("exchange", pending)]
        attempt = 0
        out: Optional[np.ndarray] = None
        while steps:
            kind, epoch = steps[0]
            try:
                if kind == "setup":
                    self._collective_setup(validate=False)
                else:
                    ebufs = self._epoch_buffers(epoch, pending, bufs)
                    self._deposit(epoch, ebufs)
                    result = self._red.gather_need(ebufs, fill=fill)
                    self.comm.Barrier()
                    if epoch == pending:
                        out = result
                steps.pop(0)
            except MpiSimError as exc:
                attempt += 1
                if attempt > self.max_recoveries or not self._recoverable(exc):
                    raise
                restart = self._recover_membership(pending)
                steps = [("setup", 0)] + [
                    ("exchange", e) for e in range(restart, pending + 1)
                ]
        self._epoch = pending
        return out

    def _normalize_buffers(self, own_buffers: Any) -> List[np.ndarray]:
        if isinstance(own_buffers, np.ndarray):
            bufs = [own_buffers]
        else:
            bufs = list(own_buffers)
        if len(bufs) > len(self.own_boxes):
            raise ValueError(
                f"{len(bufs)} buffers for {len(self.own_boxes)} own boxes"
            )
        return bufs

    def _recoverable(self, exc: MpiSimError) -> bool:
        if isinstance(exc, RankCrashError):
            return False  # this rank is the victim; it must die
        if isinstance(exc, (RevokedError, ProcessFailedError)):
            return True
        if isinstance(exc, DeadlineError):
            # A deadline with an actual corpse behind it is a crash
            # symptom; without one it is an ordinary reliability failure.
            dead = self.comm.fabric.dead_ranks()
            return any(w in dead for w in self.comm.world_ranks)
        return False

    # -- voluntary resize ----------------------------------------------------

    @classmethod
    def from_resize(
        cls,
        result: ResizeResult,
        *,
        policy: Optional[CheckpointPolicy] = None,
        store: Optional[Any] = None,
        max_recoveries: int = 2,
    ) -> "ResilientRedistributor":
        """Wrap a :class:`ResizeResult`'s redistributor in a resilient façade.

        Used on the joining side of a grow (inside the spawn worker) and by
        callers that started from a plain :class:`Redistributor`.  The
        returned instance adopts the already-retargeted inner redistributor
        instead of building a fresh one; like any post-resize redistributor
        it is unmapped until the caller's next collective :meth:`setup`.
        """
        red = result.redistributor
        if red is None or result.comm is None:
            raise ValueError("from_resize() needs a member ResizeResult")
        rr = cls(
            result.comm,
            red.descriptor.ndims,
            red.descriptor.dtype,
            backend=red.backend,
            components=red.descriptor.components,
            transport=red.transport,
            reliability=red.reliability,
            policy=policy,
            store=store,
            max_recoveries=max_recoveries,
        )
        rr._red = red
        return rr

    def resize(
        self,
        new_n: int,
        own_buffers: Any,
        layout: Any,
        *,
        worker: Optional[Any] = None,
        worker_args: Tuple[Any, ...] = (),
        validate: bool = True,
    ) -> ResizeResult:
        """Voluntarily reshape the live world to ``new_n`` ranks.

        The symmetric twin of crash recovery: delegates the membership
        change and data migration to :meth:`Redistributor.resize` (spawn +
        DDR exchange for a grow, split + exchange for a shrink), then
        installs the new communicator through the same ``_resize_world``
        path recovery uses.  ``own_buffers`` may cover a prefix of
        ``own_boxes``; adopted boxes the caller does not supply are filled
        from the newest checkpoints, exactly as in :meth:`gather_need`.

        For a grow, ``worker`` runs on each spawned rank as
        ``worker(resilient, result, *worker_args)`` where ``resilient`` is
        a :class:`ResilientRedistributor` already aligned to the members'
        epoch counter (required: replay agreement takes the minimum pending
        epoch across ranks, so a joiner at epoch 0 would roll every
        survivor back to the beginning).

        Returns the member-side :class:`ResizeResult`; non-members (ranks
        dropped by a shrink) get ``result.member == False`` and this façade
        becomes unusable until a fresh :meth:`setup` on a live world.
        After a member resize, call :meth:`setup` collectively to declare
        the new generation's own/need boxes.
        """
        if self._red is None:
            raise RuntimeError("setup() must be called before resize()")
        bufs = self._normalize_buffers(own_buffers)
        if len(bufs) < len(self.own_boxes):
            # Cover adopted (or simply unsupplied) boxes from checkpoints.
            bufs = self._epoch_buffers(self._epoch, self._epoch, bufs)

        epoch = self._epoch
        policy = self.policy
        max_recoveries = self.max_recoveries
        user_worker = worker

        def _joiner(result: ResizeResult, *wargs: Any) -> Any:
            rr = ResilientRedistributor.from_resize(
                result, policy=policy, max_recoveries=max_recoveries
            )
            rr._epoch = epoch  # align replay agreement with the members
            return user_worker(rr, result, *wargs)

        result = self._red.resize(
            new_n,
            bufs,
            layout,
            worker=_joiner if user_worker is not None else None,
            worker_args=worker_args,
            validate=validate,
        )
        RESILIENCE_STATS.incr("voluntary_resizes")
        self._owns_by_world = {}
        self._needs_by_world = {}
        self.adopted_boxes = []
        self.stale_boxes = []
        self.need_box = None
        if result.member:
            self._resize_world(result.comm)
            self.own_boxes = [result.own] if result.own is not None else []
        else:
            # Dropped by the shrink: release the inner redistributor so any
            # further use fails fast with the setup-required error.
            self._red = None
            self.own_boxes = []
        return result

    # -- checkpointing -------------------------------------------------------

    def _my_world(self) -> int:
        return self.comm.world_rank_of(self.comm.rank)

    def _deposit(self, epoch: int, bufs: Sequence[np.ndarray]) -> None:
        holders = self.policy.holder_world_ranks(
            self.comm.rank, self.comm.world_ranks
        )
        with TRACER.span("resilience.deposit", rank=self._my_world(), epoch=epoch):
            self.store.deposit(
                self._my_world(),
                epoch,
                holders,
                list(zip(self.own_boxes, bufs)),
                retain=self.policy.retain,
            )
        RESILIENCE_STATS.incr("deposits")

    def _epoch_buffers(
        self, epoch: int, pending: int, bufs: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Data for every own box at ``epoch``.

        The pending epoch takes caller buffers where supplied; replayed
        epochs (and adopted boxes the caller doesn't cover) come from the
        checkpoint store.  Boxes restored from an older generation are
        recorded in ``stale_boxes`` when they feed the pending output.
        """
        dead = self.comm.fabric.dead_ranks()
        stale: List[Box] = []
        out: List[np.ndarray] = []
        for i, box in enumerate(self.own_boxes):
            if epoch == pending and i < len(bufs):
                out.append(bufs[i])
                continue
            got = self.store.fetch(box, epoch, dead)
            if got is None:
                raise DataLossError(
                    f"no live checkpoint holder for {box} at epoch {epoch}",
                    lost_boxes=(box,),
                )
            arr, exact = got
            if not exact:
                stale.append(box)
            out.append(arr)
        if epoch == pending:
            self.stale_boxes = stale
            if stale:
                RESILIENCE_STATS.incr("stale_restores", len(stale))
        else:
            RESILIENCE_STATS.incr("replays")
        return out

    # -- recovery ------------------------------------------------------------

    def _recover_membership(self, pending: int) -> int:
        """Revoke/agree/shrink/adopt; returns the agreed restart epoch.

        Uses only the fabric's crash-proof agreement plane (no transport
        operations), so a second crash cannot strand recovery itself —
        at worst the rebuilt setup or a replayed exchange fails and the
        outer loop runs recovery again on the shrunken communicator.
        """
        self.recoveries += 1
        RESILIENCE_STATS.incr("recoveries")
        fabric = self.comm.fabric
        with TRACER.span("resilience.recover", rank=self._my_world()):
            self.comm.revoke()
            observed = frozenset(
                w for w in self.comm.world_ranks if fabric.is_gone(w)
            )
            agreed = self.comm.agree(
                {"dead": observed, "restart": pending},
                combine=lambda a, b: {
                    "dead": a["dead"] | b["dead"],
                    "restart": min(a["restart"], b["restart"]),
                },
            )
            dead = frozenset(agreed["dead"])
            old_members = self.comm.world_ranks
            self._resize_world(
                self.comm.shrink(dead=dead), dead=dead, old_members=old_members
            )
        return int(agreed["restart"])

    def _resize_world(
        self,
        new_comm: Communicator,
        dead: frozenset = frozenset(),
        old_members: Tuple[int, ...] = (),
    ) -> None:
        """Install a reshaped communicator — the shared half of every resize.

        Crash recovery arrives with the shrunken survivor communicator and
        the agreed dead set (dead ranks' chunks are adopted from the
        checkpoint store); voluntary :meth:`resize` arrives with a grown or
        split communicator and no dead ranks.  Either way the inner
        redistributor is retargeted at the next collective setup, so both
        paths share one mapping-rebuild lifecycle.
        """
        self.comm = new_comm
        if dead:
            self._adopt(dead, tuple(old_members))

    def _adopt(self, dead: frozenset, old_members: Tuple[int, ...]) -> None:
        """Reassign dead ranks' boxes to survivors, all ranks in lockstep.

        Every survivor runs the same deterministic computation over the
        agreed dead set, so the post-recovery declarations are consistent
        without further communication.  The adopter of a chunk is its
        owner's first live buddy (falling back to the first survivor);
        chunks with no readable checkpoint are dropped if nobody needs
        them and raise :class:`DataLossError` otherwise.
        """
        survivors = [w for w in old_members if w not in dead]
        all_dead = frozenset(self.comm.fabric.dead_ranks()) | dead
        my_world = self._my_world()
        unrecoverable: List[Box] = []
        for owner in sorted(dead):
            boxes = self._owns_by_world.pop(owner, [])
            self._needs_by_world.pop(owner, None)
            if not boxes:
                continue
            holders = self.policy.holder_world_ranks(
                old_members.index(owner), old_members
            )
            live_buddies = [w for w in holders if w not in dead]
            adopter = live_buddies[0] if live_buddies else survivors[0]
            adopted: List[Box] = []
            for box in boxes:
                if not self.store.has_box(box, all_dead):
                    if self._box_needed(box, dead):
                        unrecoverable.append(box)
                    else:
                        RESILIENCE_STATS.incr("dropped_boxes")
                    continue
                adopted.append(box)
            if not adopted:
                continue
            self._owns_by_world.setdefault(adopter, []).extend(adopted)
            if adopter == my_world:
                self.own_boxes.extend(adopted)
                self.adopted_boxes.extend(adopted)
                RESILIENCE_STATS.incr("adopted_boxes", len(adopted))
        if unrecoverable:
            raise DataLossError(
                "unrecoverable chunks (owner and all buddy holders dead) "
                "still needed by survivors: "
                + ", ".join(str(b) for b in unrecoverable),
                lost_boxes=unrecoverable,
            )

    def _box_needed(self, box: Box, dead: frozenset) -> bool:
        for world, need in self._needs_by_world.items():
            if world in dead or need is None:
                continue
            if box.overlaps(need):
                return True
        return False

    # -- introspection -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Completed exchange epochs."""
        return self._epoch

    @property
    def degraded(self) -> bool:
        """Did the most recent exchange include stale-restored regions?"""
        return bool(self.stale_boxes)

    @property
    def inner(self) -> Optional[Redistributor]:
        """The current wrapped :class:`Redistributor` (rebuilt on shrink)."""
        return self._red

    def stats(self) -> dict:
        return {
            "recoveries": self.recoveries,
            "adopted_boxes": len(self.adopted_boxes),
            "stale_boxes": len(self.stale_boxes),
            "epoch": self._epoch,
        }
