"""In-memory buddy checkpoint store for crash recovery.

Every exchange epoch, each rank deposits a copy of its owned chunks with
itself and with ``replicas`` buddy ranks (comm rank + k*stride, wrapping).
The store is a process-wide blackboard (it lives in ``Fabric.shared``), but
availability respects the failure model: a deposit is only *readable* while
at least one of its holders is not dead.  A cleanly retired rank is assumed
to have flushed its replicas on the way out, so retirement does not forfeit
deposits — only crashes do.

Memory cost per rank is ``(1 + replicas) * retain * bytes(own chunks)``:
the self-copy (needed to replay an epoch after a peer's crash rolls the
collective sequence back) plus one copy per buddy, for the last ``retain``
epochs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.box import Box
from ..mpisim.comm import Fabric

_STORE_KEY = "buddy_store"


@dataclass(frozen=True)
class CheckpointPolicy:
    """How aggressively chunk data is replicated across ranks.

    ``stride``
        Buddy k of comm rank r is ``(r + k*stride) % size``.  A stride
        larger than 1 spreads replicas away from the owner's neighbourhood
        so a localised failure (adjacent ranks) doesn't take out both the
        owner and its buddy.
    ``replicas``
        Number of buddy copies beyond the owner's own retained copy.  Data
        is lost only when the owner *and* all ``replicas`` buddies are dead.
    ``retain``
        Epochs of history kept per owner.  Two suffices for the
        redistributor (the trailing barrier bounds epoch skew across ranks
        to one), ``None`` keeps everything (the pipeline retains all frames
        so any rollback point is reachable).
    """

    stride: int = 1
    replicas: int = 1
    retain: Optional[int] = 2

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        if self.retain is not None and self.retain < 1:
            raise ValueError(f"retain must be >= 1 or None, got {self.retain}")

    def holder_world_ranks(self, rank: int, members: Sequence[int]) -> Tuple[int, ...]:
        """World ranks holding rank ``rank``'s deposits: self, then buddies."""
        size = len(members)
        holders = [members[rank]]
        for k in range(1, self.replicas + 1):
            buddy = members[(rank + k * self.stride) % size]
            if buddy not in holders:
                holders.append(buddy)
        return tuple(holders)


class BuddyStore:
    """Thread-safe (owner, epoch) -> {holder: [(Box, array)]} deposit map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (owner_world, epoch) -> {holder_world: [(Box, ndarray), ...]}
        self._deposits: Dict[Tuple[int, int], Dict[int, List[Tuple[Box, np.ndarray]]]] = {}

    def deposit(
        self,
        owner_world: int,
        epoch: int,
        holders: Iterable[int],
        pairs: Sequence[Tuple[Box, np.ndarray]],
        retain: Optional[int] = None,
    ) -> None:
        """Record ``owner``'s chunk data for ``epoch`` with every holder.

        Arrays are copied once and shared between holders (they are never
        mutated after deposit).  When ``retain`` is set, only the newest
        ``retain`` epochs for this owner survive the call.
        """
        # order="C", not the default order="K": exchange buffers must be
        # C-contiguous, and "K" would preserve e.g. a moveaxis view's
        # permuted strides.
        copied = [(box, np.array(arr, copy=True, order="C")) for box, arr in pairs]
        with self._lock:
            self._deposits[(owner_world, epoch)] = {h: copied for h in holders}
            if retain is not None:
                epochs = sorted(
                    e for (o, e) in self._deposits if o == owner_world
                )
                for stale in epochs[:-retain]:
                    self._deposits.pop((owner_world, stale), None)

    def _live_pairs(
        self, key: Tuple[int, int], dead: frozenset
    ) -> Optional[List[Tuple[Box, np.ndarray]]]:
        holders = self._deposits.get(key)
        if not holders:
            return None
        for holder in sorted(holders):
            if holder not in dead:
                return holders[holder]
        return None

    def fetch(
        self, box: Box, epoch: int, dead: frozenset
    ) -> Optional[Tuple[np.ndarray, bool]]:
        """Best available data for ``box``: ``(array_copy, exact_epoch)``.

        Prefers a deposit at exactly ``epoch`` (any owner, live holder);
        otherwise falls back to the newest older epoch, flagged stale.
        Returns ``None`` when no live holder has the box at all.
        """
        with self._lock:
            best: Optional[np.ndarray] = None
            best_epoch = -1
            for key in sorted(self._deposits):
                owner, ep = key
                if ep > epoch:
                    continue
                pairs = self._live_pairs(key, dead)
                if pairs is None:
                    continue
                for b, arr in pairs:
                    if b == box and ep > best_epoch:
                        best, best_epoch = arr, ep
            if best is None:
                return None
            return np.array(best, copy=True, order="C"), best_epoch == epoch

    def has_box(self, box: Box, dead: frozenset) -> bool:
        """Is any epoch of ``box`` readable through a live holder?"""
        with self._lock:
            for key in sorted(self._deposits):
                pairs = self._live_pairs(key, dead)
                if pairs is None:
                    continue
                if any(b == box for b, _ in pairs):
                    return True
        return False

    def epochs_for(self, owner_world: int) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(e for (o, e) in self._deposits if o == owner_world))

    def clear(self) -> None:
        with self._lock:
            self._deposits.clear()


def shared_store(fabric: Fabric, key: str = _STORE_KEY):
    """The fabric-wide buddy store for ``key``, created on first use.

    On the thread executor ``Fabric.shared`` is genuinely fabric-wide, so a
    plain in-memory :class:`BuddyStore` works.  On the process executor the
    fabric is per-rank; when it advertises a ``blackboard_prefix`` the store
    is a :class:`~repro.resilience.shmstore.ShmBuddyStore` over named
    shared-memory segments instead, so deposits are visible to (and survive
    for) every rank process.  Both expose the same interface.
    """
    with fabric.shared_lock:
        store = fabric.shared.get(key)
        if store is None:
            prefix = getattr(fabric, "blackboard_prefix", None)
            if prefix:
                from .shmstore import ShmBuddyStore

                tag = "".join(c for c in key if c.isalnum())[:16]
                store = ShmBuddyStore(f"{prefix}{tag}")
            else:
                store = BuddyStore()
            fabric.shared[key] = store
        return store
