"""Shared-memory buddy checkpoint store: crash recovery across processes.

:class:`~repro.resilience.checkpoint.BuddyStore` lives on ``Fabric.shared``,
which under the process executor is a *per-rank* dict — a survivor could
never read a dead peer's deposits, so buddy recovery was thread-only (the
PR 6 known limitation).  :class:`ShmBuddyStore` keeps the exact same
``(owner, epoch) -> {holders, [(Box, array)]}`` semantics but publishes each
deposit as a named POSIX shared-memory segment under the run's blackboard
prefix (``Fabric.blackboard_prefix``), so any rank — including one that
joined after the deposit was written — can read it after the owner died.

Segment protocol
----------------

One segment per deposit, named ``{prefix}_{owner}_{epoch}_{pid}_{seq}``.
The first header byte is a ready flag: the writer creates the segment with
the flag clear, writes the length-prefixed pickle of
``{"holders": (...), "pairs": [(Box, ndarray), ...]}``, and sets the flag
last, so readers never observe a half-written blob (they skip not-ready
segments, exactly as if the deposit had not happened yet).  Re-deposits of
the same ``(owner, epoch)`` — epoch replay after a crash — write a fresh
segment (the per-writer ``seq`` makes the name unique) and then unlink the
superseded one; readers always pick the newest ready version.

Each ``(owner, epoch)`` key has a single writer (the rank hosting
``owner`` — after adoption, deposits continue under the *adopter's* world
rank), so no cross-process write locking is needed.

Lifecycle: segments are deliberately **not** registered in the staging
registries of :mod:`repro.mpisim.shm` — ``release_all`` destroys a
process's owned segments at exit, which is precisely wrong for checkpoints
(a crashed rank's deposits must outlive it).  The multiprocessing resource
tracker's create-time registration is left in place (the fork-shared
tracker daemon keeps one set for the whole rank tree) and is balanced by
exactly one unregister at whichever site unlinks the segment: store
pruning (``retain`` / supersede / :meth:`clear`) or the process-executor
parent's end-of-run ``sweep_prefix`` (the blackboard prefix extends the
run's shm prefix, so the sweep reaps deposits too).
"""

from __future__ import annotations

import os
import pickle
import threading
from multiprocessing import shared_memory
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.box import Box
from ..mpisim.shm import _untrack

__all__ = ["ShmBuddyStore"]

#: Header layout: byte 0 ready flag, bytes 8..16 little-endian blob length.
_HEADER = 16
_READY = 1

_SHM_DIR = "/dev/shm"


class ShmBuddyStore:
    """Drop-in :class:`BuddyStore` twin backed by named shm segments.

    Same public surface — ``deposit`` / ``fetch`` / ``has_box`` /
    ``epochs_for`` / ``clear`` — and the same availability model: a deposit
    is readable while at least one of its holders is not in the caller's
    dead set.  State lives in ``/dev/shm``, so it survives the depositing
    process.
    """

    def __init__(self, prefix: str) -> None:
        if not prefix:
            raise ValueError("ShmBuddyStore needs a non-empty segment prefix")
        self.prefix = prefix
        self._lock = threading.Lock()
        self._seq = 0

    # -- segment naming ------------------------------------------------------

    def _scan(self) -> List[Tuple[int, int, int, int, str]]:
        """All deposit segments: ``(owner, epoch, pid, seq, name)`` tuples."""
        head = f"{self.prefix}_"
        entries: List[Tuple[int, int, int, int, str]] = []
        try:
            names = os.listdir(_SHM_DIR)
        except OSError:
            return entries
        for name in names:
            if not name.startswith(head):
                continue
            parts = name[len(head):].split("_")
            if len(parts) != 4:
                continue
            try:
                owner, epoch, pid, seq = (int(p) for p in parts)
            except ValueError:
                continue
            entries.append((owner, epoch, pid, seq, name))
        return entries

    @staticmethod
    def _unlink(name: str) -> None:
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:
            pass
        _untrack(name)

    # -- blob IO -------------------------------------------------------------

    def _write(self, name: str, blob: bytes) -> None:
        # Registration with the resource tracker stays: whichever process
        # eventually unlinks this segment (prune or parent sweep) pairs it
        # with the one unregister.
        seg = shared_memory.SharedMemory(
            name=name, create=True, size=_HEADER + len(blob)
        )
        try:
            seg.buf[8:16] = len(blob).to_bytes(8, "little")
            seg.buf[_HEADER : _HEADER + len(blob)] = blob
            seg.buf[0] = _READY  # commit: readers skip until this is set
        finally:
            seg.close()

    @staticmethod
    def _read(name: str) -> Optional[dict]:
        try:
            # Attach-side tracker registration is a set-add of an already
            # registered name: a no-op, so no unregister is owed here.
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        try:
            if seg.buf[0] != _READY:
                return None
            length = int.from_bytes(bytes(seg.buf[8:16]), "little")
            return pickle.loads(bytes(seg.buf[_HEADER : _HEADER + length]))
        except Exception:
            return None  # racing unlink, or a truncated writer that died
        finally:
            seg.close()

    def _read_latest(
        self, owner: int, epoch: int, entries: Sequence[Tuple[int, int, int, int, str]]
    ) -> Optional[dict]:
        versions = sorted(
            ((pid, seq, name) for o, e, pid, seq, name in entries
             if o == owner and e == epoch),
            reverse=True,
        )
        for _, _, name in versions:
            payload = self._read(name)
            if payload is not None:
                return payload
        return None

    # -- BuddyStore interface ------------------------------------------------

    def deposit(
        self,
        owner_world: int,
        epoch: int,
        holders: Iterable[int],
        pairs: Sequence[Tuple[Box, np.ndarray]],
        retain: Optional[int] = None,
    ) -> None:
        payload = {
            "holders": tuple(holders),
            # order="C" for the same reason BuddyStore copies C-order:
            # restored buffers feed exchanges that need contiguity.
            "pairs": [(box, np.array(arr, copy=True, order="C")) for box, arr in pairs],
        }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._seq += 1
            seq = self._seq
        name = f"{self.prefix}_{owner_world}_{epoch}_{os.getpid()}_{seq}"
        self._write(name, blob)
        entries = self._scan()
        # Supersede older versions of this (owner, epoch) deposit.
        for o, e, _, _, other in entries:
            if o == owner_world and e == epoch and other != name:
                self._unlink(other)
        if retain is not None:
            epochs = sorted({e for o, e, _, _, _ in entries if o == owner_world})
            for stale in epochs[:-retain]:
                for o, e, _, _, other in entries:
                    if o == owner_world and e == stale:
                        self._unlink(other)

    def fetch(
        self, box: Box, epoch: int, dead: frozenset
    ) -> Optional[Tuple[np.ndarray, bool]]:
        entries = self._scan()
        best: Optional[np.ndarray] = None
        best_epoch = -1
        for owner, ep in sorted({(o, e) for o, e, _, _, _ in entries}):
            if ep > epoch:
                continue
            payload = self._read_latest(owner, ep, entries)
            if payload is None:
                continue
            if all(h in dead for h in payload["holders"]):
                continue
            for b, arr in payload["pairs"]:
                if b == box and ep > best_epoch:
                    best, best_epoch = arr, ep
        if best is None:
            return None
        return np.array(best, copy=True, order="C"), best_epoch == epoch

    def has_box(self, box: Box, dead: frozenset) -> bool:
        entries = self._scan()
        for owner, ep in sorted({(o, e) for o, e, _, _, _ in entries}):
            payload = self._read_latest(owner, ep, entries)
            if payload is None:
                continue
            if all(h in dead for h in payload["holders"]):
                continue
            if any(b == box for b, _ in payload["pairs"]):
                return True
        return False

    def epochs_for(self, owner_world: int) -> Tuple[int, ...]:
        return tuple(sorted(
            {e for o, e, _, _, _ in self._scan() if o == owner_world}
        ))

    def clear(self) -> None:
        for _, _, _, _, name in self._scan():
            self._unlink(name)
