"""Typed terminal errors for the resilience layer.

Both derive from :class:`~repro.mpisim.errors.MpiSimError` so the chaos
harness and any ``except MpiSimError`` site classify them as *typed*
outcomes rather than harness failures.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..mpisim.errors import MpiSimError


class DataLossError(MpiSimError):
    """A crashed rank's data is unrecoverable and somebody still needs it.

    Raised when every replica holder of a lost chunk is itself dead (or the
    chunk was never checkpointed, e.g. the rank died during the initial
    mapping setup) and the chunk intersects a surviving rank's need region.
    ``lost_boxes`` names the unrecoverable boxes so callers can report
    exactly which domain regions are gone.
    """

    def __init__(self, message: str, lost_boxes: Sequence = ()) -> None:
        super().__init__(message)
        self.lost_boxes: Tuple = tuple(lost_boxes)


class ReconfigurationError(MpiSimError):
    """The surviving topology cannot host the requested configuration.

    Raised by shrink-mode pipeline recovery when, e.g., fewer producer
    ranks survive than the decomposition requires (``m' < n``) or the
    consumer side is wiped out entirely.
    """
