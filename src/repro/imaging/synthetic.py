"""Synthetic CT-like volumes standing in for the paper's APS scan data.

The paper's authentic data sets — a primate tooth (2048^3, 32-bit) and a
mouse brain (4096x2048x4096, 8-bit) — are proprietary.  These phantoms
match what the experiments actually depend on: slice geometry, bit depth,
and visually structured content for the DVR figure.  Every slice is a pure
function of ``(volume params, z)``, so arbitrarily large stacks can be
generated one slice at a time without holding the volume in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VolumeSpec:
    """Geometry of a synthetic volume: ``width x height`` slices, ``depth`` deep."""

    width: int
    height: int
    depth: int
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        for name in ("width", "height", "depth"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


def _grid(spec: VolumeSpec, z: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Normalised coordinates in [-1, 1] for one slice."""
    ys = np.linspace(-1.0, 1.0, spec.height)[:, None]
    xs = np.linspace(-1.0, 1.0, spec.width)[None, :]
    zc = -1.0 + 2.0 * z / max(spec.depth - 1, 1)
    return xs, ys, zc


def _quantise(field: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Map a [0, 1] float field to the target sample type."""
    clipped = np.clip(field, 0.0, 1.0)
    if dtype == np.float32:
        return clipped.astype(np.float32)
    info = np.iinfo(dtype)
    return (clipped * info.max).astype(dtype)


def tooth_slice(spec: VolumeSpec, z: int) -> np.ndarray:
    """One slice of the "primate tooth" phantom.

    Concentric anisotropic ellipsoids: enamel shell (dense), dentin body
    (medium), pulp cavity (near-empty), plus two root canals toward the
    bottom — enough radial structure to make the DVR colormap (Figure 2)
    meaningful.
    """
    if not (0 <= z < spec.depth):
        raise ValueError(f"slice {z} out of range [0, {spec.depth})")
    xs, ys, zc = _grid(spec, z)

    # Tooth tapers toward the root (zc = -1 bottom, +1 crown).
    taper = 0.55 + 0.25 * zc
    r2 = (xs / taper) ** 2 + (ys / taper) ** 2
    body = r2 + (zc / 0.95) ** 2

    field = np.zeros((spec.height, spec.width))
    field[body < 1.00] = 0.55  # dentin
    field[(body >= 0.80) & (body < 1.00)] = 0.95  # enamel shell
    field[body < 0.25] = 0.08  # pulp cavity

    if zc < -0.2:  # root canals
        for cx in (-0.25, 0.25):
            canal = ((xs - cx) / 0.08) ** 2 + (ys / 0.08) ** 2
            field[(canal < 1.0) & (body < 1.0)] = 0.10

    # Mild deterministic texture so slices are not piecewise-constant.
    texture = 0.03 * np.sin(9 * np.pi * xs) * np.sin(7 * np.pi * ys) * np.cos(5 * np.pi * zc)
    field = np.where(field > 0, field + texture, field)
    return _quantise(field, spec.dtype)


def _hash3(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic lattice hash -> floats in [0, 1) (vectorised)."""
    h = (
        ix.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        ^ iy.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
        ^ iz.astype(np.uint64) * np.uint64(0x165667B19E3779F9)
        ^ np.uint64(seed)
    )
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= h >> np.uint64(33)
    return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def value_noise_slice(
    spec: VolumeSpec, z: int, scale: float = 16.0, seed: int = 7
) -> np.ndarray:
    """Trilinear value noise in [0, 1] for one z-slice (float64)."""
    xs = np.arange(spec.width) / scale
    ys = np.arange(spec.height) / scale
    zf = z / scale

    x0 = np.floor(xs).astype(np.int64)
    y0 = np.floor(ys).astype(np.int64)
    z0 = int(np.floor(zf))
    fx = (xs - x0)[None, :]
    fy = (ys - y0)[:, None]
    fz = zf - z0

    gx0, gy0 = np.meshgrid(x0, y0)
    out = np.zeros((spec.height, spec.width))
    for dz, wz in ((0, 1 - fz), (1, fz)):
        c00 = _hash3(gx0, gy0, np.full_like(gx0, z0 + dz), seed)
        c10 = _hash3(gx0 + 1, gy0, np.full_like(gx0, z0 + dz), seed)
        c01 = _hash3(gx0, gy0 + 1, np.full_like(gx0, z0 + dz), seed)
        c11 = _hash3(gx0 + 1, gy0 + 1, np.full_like(gx0, z0 + dz), seed)
        top = c00 * (1 - fx) + c10 * fx
        bottom = c01 * (1 - fx) + c11 * fx
        out += wz * (top * (1 - fy) + bottom * fy)
    return out


def brain_slice(spec: VolumeSpec, z: int, seed: int = 7) -> np.ndarray:
    """One slice of the "mouse brain" phantom: a smooth envelope modulated
    by multi-octave value noise (gyri/sulci-like texture)."""
    if not (0 <= z < spec.depth):
        raise ValueError(f"slice {z} out of range [0, {spec.depth})")
    xs, ys, zc = _grid(spec, z)
    envelope = 1.0 - ((xs / 0.85) ** 2 + (ys / 0.7) ** 2 + (zc / 0.9) ** 2)
    envelope = np.clip(envelope, 0.0, 1.0)

    noise = (
        0.55 * value_noise_slice(spec, z, scale=max(spec.width / 8, 2), seed=seed)
        + 0.30 * value_noise_slice(spec, z, scale=max(spec.width / 24, 2), seed=seed + 1)
        + 0.15 * value_noise_slice(spec, z, scale=max(spec.width / 64, 2), seed=seed + 2)
    )
    field = envelope * (0.35 + 0.65 * noise)
    return _quantise(field, spec.dtype)


PHANTOMS = {
    "tooth": tooth_slice,
    "brain": brain_slice,
}


def phantom_slice(name: str, spec: VolumeSpec, z: int) -> np.ndarray:
    """Dispatch by phantom name ('tooth' or 'brain')."""
    try:
        fn = PHANTOMS[name]
    except KeyError:
        raise ValueError(f"unknown phantom {name!r}; options: {sorted(PHANTOMS)}") from None
    return fn(spec, z)


def phantom_volume(name: str, spec: VolumeSpec) -> np.ndarray:
    """Whole volume as ``(depth, height, width)`` — test/example sizes only."""
    return np.stack([phantom_slice(name, spec, z) for z in range(spec.depth)])
