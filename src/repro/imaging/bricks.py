"""A bricked volume file format with O(1) random block access.

The paper's introduction motivates DDR with exactly this workflow: tools
like ParaView "require preprocessing data into a custom format in order to
leverage parallel data distribution", because slice formats (TIFF stacks)
force whole-image decodes.  This module provides the *destination* format —
a single file of fixed-size N³ bricks with a flat index — and
``repro.io.convert`` builds it from a TIFF stack using DDR.

Layout: a fixed binary header, then bricks in x-fastest (i, j, k) order.
Edge bricks are stored zero-padded to the full brick size so any brick's
offset is computable without an index table.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.box import Box

MAGIC = b"DDRBRICK"
VERSION = 1
_HEADER_STRUCT = struct.Struct("<8sI8sQQQI")  # magic, ver, dtype, dims xyz, brick
HEADER_SIZE = _HEADER_STRUCT.size


class BrickFormatError(ValueError):
    """Malformed bricked-volume file or invalid access."""


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class BrickedHeader:
    """Parsed header of a bricked volume file."""

    dims: tuple[int, int, int]  # (x, y, z) voxels
    brick: int  # cubic brick edge
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.brick < 1:
            raise BrickFormatError(f"brick edge must be >= 1, got {self.brick}")
        if any(d < 1 for d in self.dims):
            raise BrickFormatError(f"bad dims {self.dims}")

    @property
    def grid(self) -> tuple[int, int, int]:
        """Bricks per axis."""
        return tuple(_ceil_div(d, self.brick) for d in self.dims)  # type: ignore[return-value]

    @property
    def n_bricks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def brick_bytes(self) -> int:
        return self.brick**3 * self.dtype.itemsize

    @property
    def file_size(self) -> int:
        return HEADER_SIZE + self.n_bricks * self.brick_bytes

    def brick_index(self, i: int, j: int, k: int) -> int:
        gx, gy, gz = self.grid
        if not (0 <= i < gx and 0 <= j < gy and 0 <= k < gz):
            raise BrickFormatError(f"brick ({i}, {j}, {k}) outside grid {self.grid}")
        return i + j * gx + k * gx * gy

    def brick_offset(self, i: int, j: int, k: int) -> int:
        return HEADER_SIZE + self.brick_index(i, j, k) * self.brick_bytes

    def brick_box(self, i: int, j: int, k: int) -> Box:
        """The (clipped) voxel region of one brick, paper order (x, y, z)."""
        self.brick_index(i, j, k)  # bounds check
        offset = (i * self.brick, j * self.brick, k * self.brick)
        dims = tuple(
            min(self.brick, d - o) for o, d in zip(offset, self.dims)
        )
        return Box(offset, dims)

    def pack(self) -> bytes:
        code = self.dtype.str.encode().ljust(8, b"\x00")
        return _HEADER_STRUCT.pack(MAGIC, VERSION, code, *self.dims, self.brick)

    @classmethod
    def unpack(cls, blob: bytes) -> "BrickedHeader":
        if len(blob) < HEADER_SIZE:
            raise BrickFormatError("file too small for a brick header")
        magic, version, code, dx, dy, dz, brick = _HEADER_STRUCT.unpack(
            blob[:HEADER_SIZE]
        )
        if magic != MAGIC:
            raise BrickFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise BrickFormatError(f"unsupported version {version}")
        dtype = np.dtype(code.rstrip(b"\x00").decode())
        return cls(dims=(dx, dy, dz), brick=brick, dtype=dtype)


class BrickedVolume:
    """Random-access handle on a bricked volume file.

    Writers call :meth:`create` once, then any number of processes may
    :meth:`write_brick` disjoint bricks concurrently (each at its own fixed
    offset).  Readers fetch single bricks or assemble arbitrary regions,
    touching only the bricks the region overlaps — the access pattern the
    slice formats cannot offer.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            self.header = BrickedHeader.unpack(handle.read(HEADER_SIZE))

    # -- creation -----------------------------------------------------------

    @classmethod
    def create(
        cls, path, dims: tuple[int, int, int], dtype, brick: int = 64
    ) -> "BrickedVolume":
        """Allocate the file (header + zeroed brick area)."""
        header = BrickedHeader(dims=tuple(int(d) for d in dims), brick=int(brick),
                               dtype=np.dtype(dtype))
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(header.pack())
            handle.truncate(header.file_size)
        return cls(path)

    # -- writing ------------------------------------------------------------

    def write_brick(self, i: int, j: int, k: int, data: np.ndarray) -> None:
        """Store one brick; ``data`` is (z, y, x) C-order, clipped shape."""
        header = self.header
        box = header.brick_box(i, j, k)
        if data.shape != box.np_shape():
            raise BrickFormatError(
                f"brick ({i},{j},{k}) expects shape {box.np_shape()}, got {data.shape}"
            )
        if data.dtype != header.dtype:
            raise BrickFormatError(
                f"dtype {data.dtype} != volume dtype {header.dtype}"
            )
        full = np.zeros((header.brick,) * 3, dtype=header.dtype)
        dz, dy, dx = data.shape
        full[:dz, :dy, :dx] = data
        with open(self.path, "r+b") as handle:
            handle.seek(header.brick_offset(i, j, k))
            handle.write(full.tobytes())

    # -- reading --------------------------------------------------------------

    def read_brick(self, i: int, j: int, k: int) -> np.ndarray:
        """One brick, cropped to the volume boundary; shape (z, y, x)."""
        header = self.header
        box = header.brick_box(i, j, k)
        with open(self.path, "rb") as handle:
            handle.seek(header.brick_offset(i, j, k))
            blob = handle.read(header.brick_bytes)
        if len(blob) != header.brick_bytes:
            raise BrickFormatError(f"truncated brick ({i},{j},{k})")
        full = np.frombuffer(blob, dtype=header.dtype).reshape((header.brick,) * 3)
        dz, dy, dx = box.np_shape()
        return full[:dz, :dy, :dx].copy()

    def read_region(self, region: Box) -> np.ndarray:
        """Assemble an arbitrary (x, y, z) box, reading only touched bricks."""
        header = self.header
        domain = Box((0, 0, 0), header.dims)
        if not domain.contains_box(region):
            raise BrickFormatError(f"{region} outside volume {domain}")
        out = np.empty(region.np_shape(), dtype=header.dtype)
        brick = header.brick
        lo = [o // brick for o in region.offset]
        hi = [_ceil_div(o + d, brick) for o, d in zip(region.offset, region.dims)]
        for k in range(lo[2], hi[2]):
            for j in range(lo[1], hi[1]):
                for i in range(lo[0], hi[0]):
                    bbox = header.brick_box(i, j, k)
                    overlap = bbox.intersect(region)
                    if overlap is None:
                        continue
                    data = self.read_brick(i, j, k)
                    src = tuple(
                        slice(s, s + d)
                        for s, d in zip(
                            overlap.np_starts_within(bbox), overlap.np_shape()
                        )
                    )
                    dst = tuple(
                        slice(s, s + d)
                        for s, d in zip(
                            overlap.np_starts_within(region), overlap.np_shape()
                        )
                    )
                    out[dst] = data[src]
        return out

    def bricks_touched(self, region: Box) -> int:
        """How many bricks :meth:`read_region` would read for ``region``."""
        brick = self.header.brick
        lo = [o // brick for o in region.offset]
        hi = [_ceil_div(o + d, brick) for o, d in zip(region.offset, region.dims)]
        return max(0, (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]))
