"""A from-scratch baseline TIFF reader/writer (grayscale, strip-based).

The paper's first use case loads series of grayscale TIFF images (8-, 16-
and 32-bit CT slices).  No imaging library is assumed here: this module
implements the subset of TIFF 6.0 the use case needs — single-sample
grayscale, uncompressed strips, little- or big-endian, unsigned-integer or
IEEE-float samples.

Crucially it shares the property the paper's argument rests on: *the whole
image must be read and decoded even if only a few pixels are needed*
(§IV-A) — the reader returns full 2-D arrays only.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO

import numpy as np

# TIFF tag ids (TIFF 6.0 spec).
TAG_IMAGE_WIDTH = 256
TAG_IMAGE_LENGTH = 257
TAG_BITS_PER_SAMPLE = 258
TAG_COMPRESSION = 259
TAG_PHOTOMETRIC = 262
TAG_STRIP_OFFSETS = 273
TAG_SAMPLES_PER_PIXEL = 277
TAG_ROWS_PER_STRIP = 278
TAG_STRIP_BYTE_COUNTS = 279
TAG_SAMPLE_FORMAT = 339

# TIFF field types.
TYPE_SHORT = 3  # uint16
TYPE_LONG = 4  # uint32

COMPRESSION_NONE = 1
PHOTOMETRIC_BLACK_IS_ZERO = 1
SAMPLE_FORMAT_UINT = 1
SAMPLE_FORMAT_FLOAT = 3

_TYPE_SIZE = {TYPE_SHORT: 2, TYPE_LONG: 4}

#: dtype -> (bits, sample_format)
_SUPPORTED_DTYPES = {
    np.dtype(np.uint8): (8, SAMPLE_FORMAT_UINT),
    np.dtype(np.uint16): (16, SAMPLE_FORMAT_UINT),
    np.dtype(np.uint32): (32, SAMPLE_FORMAT_UINT),
    np.dtype(np.float32): (32, SAMPLE_FORMAT_FLOAT),
}


class TiffError(ValueError):
    """Malformed file or unsupported TIFF feature."""


def _dtype_for(bits: int, sample_format: int) -> np.dtype:
    for dtype, (b, fmt) in _SUPPORTED_DTYPES.items():
        if (b, fmt) == (bits, sample_format):
            return dtype
    raise TiffError(f"unsupported sample: {bits}-bit, format {sample_format}")


@dataclass(frozen=True)
class TiffInfo:
    """Parsed metadata of one grayscale TIFF image."""

    width: int
    height: int
    dtype: np.dtype
    strip_offsets: tuple[int, ...]
    strip_byte_counts: tuple[int, ...]
    rows_per_strip: int
    byte_order: str  # "<" or ">"

    @property
    def nbytes(self) -> int:
        return self.width * self.height * self.dtype.itemsize


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def write_tiff(path_or_file, image: np.ndarray, rows_per_strip: int = 64) -> int:
    """Write a grayscale image as an uncompressed little-endian TIFF.

    ``image`` is ``(height, width)`` with one of the supported dtypes.
    Returns the number of bytes written.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise TiffError(f"expected a 2-D grayscale image, got shape {image.shape}")
    if image.dtype not in _SUPPORTED_DTYPES:
        raise TiffError(f"unsupported dtype {image.dtype}")
    if rows_per_strip < 1:
        raise TiffError(f"rows_per_strip must be >= 1, got {rows_per_strip}")

    if hasattr(path_or_file, "write"):
        return _write_tiff_stream(path_or_file, image, rows_per_strip)
    with open(path_or_file, "wb") as handle:
        return _write_tiff_stream(handle, image, rows_per_strip)


def _write_tiff_stream(out: BinaryIO, image: np.ndarray, rows_per_strip: int) -> int:
    height, width = image.shape
    bits, sample_format = _SUPPORTED_DTYPES[image.dtype]
    row_bytes = width * image.dtype.itemsize

    n_strips = (height + rows_per_strip - 1) // rows_per_strip
    strip_rows = [
        min(rows_per_strip, height - s * rows_per_strip) for s in range(n_strips)
    ]
    strip_byte_counts = [rows * row_bytes for rows in strip_rows]

    # Layout: header (8) | pixel strips | [offset arrays] | IFD
    header_size = 8
    data_start = header_size
    strip_offsets = []
    cursor = data_start
    for count in strip_byte_counts:
        strip_offsets.append(cursor)
        cursor += count

    # Out-of-line arrays for StripOffsets/StripByteCounts when > 1 strip.
    extra_start = cursor
    extra = b""
    if n_strips > 1:
        offsets_pos = extra_start
        extra += struct.pack(f"<{n_strips}I", *strip_offsets)
        counts_pos = extra_start + len(extra)
        extra += struct.pack(f"<{n_strips}I", *strip_byte_counts)
    ifd_offset = extra_start + len(extra)

    entries = []

    def entry(tag: int, field_type: int, count: int, value: int) -> None:
        entries.append(struct.pack("<HHI4s", tag, field_type, count, struct.pack("<I", value)))

    entry(TAG_IMAGE_WIDTH, TYPE_LONG, 1, width)
    entry(TAG_IMAGE_LENGTH, TYPE_LONG, 1, height)
    entry(TAG_BITS_PER_SAMPLE, TYPE_SHORT, 1, bits)
    entry(TAG_COMPRESSION, TYPE_SHORT, 1, COMPRESSION_NONE)
    entry(TAG_PHOTOMETRIC, TYPE_SHORT, 1, PHOTOMETRIC_BLACK_IS_ZERO)
    if n_strips > 1:
        entry(TAG_STRIP_OFFSETS, TYPE_LONG, n_strips, offsets_pos)
    else:
        entry(TAG_STRIP_OFFSETS, TYPE_LONG, 1, strip_offsets[0])
    entry(TAG_SAMPLES_PER_PIXEL, TYPE_SHORT, 1, 1)
    entry(TAG_ROWS_PER_STRIP, TYPE_LONG, 1, rows_per_strip)
    if n_strips > 1:
        entry(TAG_STRIP_BYTE_COUNTS, TYPE_LONG, n_strips, counts_pos)
    else:
        entry(TAG_STRIP_BYTE_COUNTS, TYPE_LONG, 1, strip_byte_counts[0])
    entry(TAG_SAMPLE_FORMAT, TYPE_SHORT, 1, sample_format)

    written = 0
    written += out.write(struct.pack("<2sHI", b"II", 42, ifd_offset))
    pixels = np.ascontiguousarray(image)
    if pixels.dtype.byteorder == ">":  # normalise to little-endian payload
        pixels = pixels.astype(pixels.dtype.newbyteorder("<"))
    written += out.write(pixels.tobytes())
    written += out.write(extra)
    written += out.write(struct.pack("<H", len(entries)))
    for packed in entries:
        written += out.write(packed)
    written += out.write(struct.pack("<I", 0))  # no next IFD
    return written


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def read_tiff_info(data: bytes) -> TiffInfo:
    """Parse the header + first IFD of an in-memory TIFF."""
    if len(data) < 8:
        raise TiffError("file too small for a TIFF header")
    order_mark = data[:2]
    if order_mark == b"II":
        bo = "<"
    elif order_mark == b"MM":
        bo = ">"
    else:
        raise TiffError(f"bad byte-order mark {order_mark!r}")
    magic, ifd_offset = struct.unpack(bo + "HI", data[2:8])
    if magic != 42:
        raise TiffError(f"bad TIFF magic {magic}")

    if ifd_offset + 2 > len(data):
        raise TiffError("IFD offset out of range")
    (n_entries,) = struct.unpack_from(bo + "H", data, ifd_offset)
    fields: dict[int, tuple[int, ...]] = {}
    pos = ifd_offset + 2
    for _ in range(n_entries):
        if pos + 12 > len(data):
            raise TiffError("truncated IFD entry")
        tag, ftype, count = struct.unpack_from(bo + "HHI", data, pos)
        value_bytes = data[pos + 8 : pos + 12]
        if ftype in _TYPE_SIZE:
            total = _TYPE_SIZE[ftype] * count
            if total <= 4:
                raw = value_bytes[:total]
            else:
                (offset,) = struct.unpack(bo + "I", value_bytes)
                if offset + total > len(data):
                    raise TiffError(f"tag {tag}: out-of-line value beyond EOF")
                raw = data[offset : offset + total]
            code = "H" if ftype == TYPE_SHORT else "I"
            fields[tag] = struct.unpack(bo + code * count, raw)
        pos += 12

    def one(tag: int, default: int | None = None) -> int:
        if tag in fields:
            return int(fields[tag][0])
        if default is None:
            raise TiffError(f"required tag {tag} missing")
        return default

    width = one(TAG_IMAGE_WIDTH)
    height = one(TAG_IMAGE_LENGTH)
    bits = one(TAG_BITS_PER_SAMPLE, 1)
    compression = one(TAG_COMPRESSION, COMPRESSION_NONE)
    samples = one(TAG_SAMPLES_PER_PIXEL, 1)
    sample_format = one(TAG_SAMPLE_FORMAT, SAMPLE_FORMAT_UINT)
    if compression != COMPRESSION_NONE:
        raise TiffError(f"unsupported compression {compression}")
    if samples != 1:
        raise TiffError(f"only single-sample grayscale supported, got {samples}")
    if TAG_STRIP_OFFSETS not in fields:
        raise TiffError("strip offsets missing")
    strip_offsets = tuple(int(v) for v in fields[TAG_STRIP_OFFSETS])
    if TAG_STRIP_BYTE_COUNTS in fields:
        strip_byte_counts = tuple(int(v) for v in fields[TAG_STRIP_BYTE_COUNTS])
    else:
        if len(strip_offsets) != 1:
            raise TiffError("StripByteCounts missing with multiple strips")
        strip_byte_counts = (width * height * (bits // 8),)
    rows_per_strip = one(TAG_ROWS_PER_STRIP, height)
    dtype = _dtype_for(bits, sample_format)
    return TiffInfo(
        width=width,
        height=height,
        dtype=dtype,
        strip_offsets=strip_offsets,
        strip_byte_counts=strip_byte_counts,
        rows_per_strip=rows_per_strip,
        byte_order=bo,
    )


def read_tiff(path_or_file) -> np.ndarray:
    """Read a grayscale TIFF fully into a ``(height, width)`` array.

    Whole-image decode only — exactly the constraint DDR exploits: partial
    reads are impossible, so the producer decodes everything and DDR moves
    the needed pixels to where they belong.
    """
    if hasattr(path_or_file, "read"):
        data = path_or_file.read()
    else:
        with open(path_or_file, "rb") as handle:
            data = handle.read()
    info = read_tiff_info(data)

    out = np.empty(info.height * info.width, dtype=info.dtype)
    sample_dtype = info.dtype.newbyteorder(info.byte_order)
    cursor = 0
    for offset, count in zip(info.strip_offsets, info.strip_byte_counts):
        if offset + count > len(data):
            raise TiffError("strip extends beyond end of file")
        strip = np.frombuffer(data[offset : offset + count], dtype=sample_dtype)
        if cursor + strip.size > out.size:
            raise TiffError("strips larger than declared image size")
        out[cursor : cursor + strip.size] = strip
        cursor += strip.size
    if cursor != out.size:
        raise TiffError(f"strips cover {cursor} samples, image needs {out.size}")
    return out.reshape(info.height, info.width)
