"""TIFF image series on disk ("a series of slices ... saved in a standard
image format, such as TIFF", paper §IV-A).

A :class:`TiffStack` is a directory of numbered single-slice TIFFs plus the
conventions for naming and ordering them.  Writers generate slices lazily
from a callable so large stacks never materialise a full volume in memory.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from .tiff import read_tiff, write_tiff

_SLICE_RE = re.compile(r"^slice_(\d{5})\.tif$")


@dataclass
class TiffStack:
    """A directory of slices named ``slice_00000.tif`` ... in z order."""

    directory: Path

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    def slice_path(self, z: int) -> Path:
        return self.directory / f"slice_{z:05d}.tif"

    def indices(self) -> list[int]:
        """Slice indices present on disk, sorted."""
        found = []
        for name in os.listdir(self.directory):
            match = _SLICE_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def __len__(self) -> int:
        return len(self.indices())

    def read_slice(self, z: int) -> np.ndarray:
        """Read + decode one whole slice (the paper's full-decode cost)."""
        return read_tiff(self.slice_path(z))

    def read_volume(self) -> np.ndarray:
        """Whole volume ``(depth, height, width)`` — small stacks only."""
        indices = self.indices()
        if not indices:
            raise FileNotFoundError(f"no slices in {self.directory}")
        if indices != list(range(len(indices))):
            raise ValueError(f"stack {self.directory} has gaps: {indices[:10]}...")
        return np.stack([self.read_slice(z) for z in indices])


def write_stack(
    directory: os.PathLike | str,
    n_slices: int,
    slice_fn: Callable[[int], np.ndarray],
    rows_per_strip: int = 64,
) -> TiffStack:
    """Generate a stack by calling ``slice_fn(z)`` for each slice.

    Creates the directory if needed; overwrites existing slices.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    stack = TiffStack(path)
    for z in range(n_slices):
        image = slice_fn(z)
        write_tiff(stack.slice_path(z), image, rows_per_strip=rows_per_strip)
    return stack


def stack_nbytes(stack: TiffStack) -> int:
    """Total on-disk size of the stack's slice files."""
    return sum(stack.slice_path(z).stat().st_size for z in stack.indices())
