"""TIFF substrate: codec, on-disk stacks, synthetic CT phantoms."""

from .bricks import BrickedHeader, BrickedVolume, BrickFormatError
from .stack import TiffStack, stack_nbytes, write_stack
from .synthetic import (
    PHANTOMS,
    VolumeSpec,
    brain_slice,
    phantom_slice,
    phantom_volume,
    tooth_slice,
    value_noise_slice,
)
from .tiff import TiffError, TiffInfo, read_tiff, read_tiff_info, write_tiff

__all__ = [
    "BrickFormatError",
    "BrickedHeader",
    "BrickedVolume",
    "PHANTOMS",
    "TiffError",
    "TiffInfo",
    "TiffStack",
    "VolumeSpec",
    "brain_slice",
    "phantom_slice",
    "phantom_volume",
    "read_tiff",
    "read_tiff_info",
    "stack_nbytes",
    "tooth_slice",
    "value_noise_slice",
    "write_stack",
    "write_tiff",
]
