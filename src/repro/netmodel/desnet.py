"""Discrete-event network simulation with max-min fair link sharing.

A mechanistic alternative to the closed-form congestion factor in
``analytic.py``: every (source rank -> destination rank) transfer of a round
becomes a *flow*; each node has finite egress and ingress NIC capacity (the
paper's single 56 Gbps FDR link per node, full duplex); flow rates follow
max-min fairness via progressive filling, and the simulation advances from
flow completion to flow completion.

Used by the netmodel ablation bench to check that the analytic model's
round-robin/consecutive crossover is not an artifact of its functional form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.plan import GlobalPlan
from ..core.schedule import ExchangeSchedule, collective_preferred, global_schedules
from .analytic import P2P_PER_MESSAGE_S
from .cluster import ClusterSpec


@dataclass
class Flow:
    """One transfer: ``nbytes`` from ``src_node``'s NIC to ``dst_node``'s."""

    src_node: int
    dst_node: int
    nbytes: float


def default_rank_to_node(nprocs: int, procs_per_node: int) -> list[int]:
    """Dense packing: ranks 0..k-1 on node 0, etc. (Cooley's default)."""
    return [rank // procs_per_node for rank in range(nprocs)]


def maxmin_rates(
    flows: list[tuple[int, int, float]],
    egress: dict[int, float],
    ingress: dict[int, float],
) -> np.ndarray:
    """Max-min fair rates via progressive filling.

    ``flows`` are (src_node, dst_node, remaining_bytes); each flow crosses
    exactly two links — its source's egress and its destination's ingress.
    Repeatedly find the most-constrained link, freeze its flows at the fair
    share, subtract, repeat.
    """
    n = len(flows)
    rates = np.zeros(n)
    frozen = np.zeros(n, dtype=bool)

    link_cap: dict[tuple[str, int], float] = {}
    link_flows: dict[tuple[str, int], list[int]] = {}
    for index, (src, dst, _) in enumerate(flows):
        link_flows.setdefault(("out", src), []).append(index)
        link_flows.setdefault(("in", dst), []).append(index)
    for kind, node in link_flows:
        link_cap[(kind, node)] = egress[node] if kind == "out" else ingress[node]

    active_links = dict(link_flows)
    while True:
        best_link = None
        best_share = np.inf
        for link, members in active_links.items():
            unfrozen = [i for i in members if not frozen[i]]
            if not unfrozen:
                continue
            share = link_cap[link] / len(unfrozen)
            if share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            break
        for index in active_links[best_link]:
            if frozen[index]:
                continue
            frozen[index] = True
            rates[index] = best_share
            src, dst, _ = flows[index]
            for link in (("out", src), ("in", dst)):
                if link != best_link:
                    link_cap[link] = max(0.0, link_cap[link] - best_share)
        del active_links[best_link]
    return rates


def simulate_flows(
    flows: list[Flow],
    link_bytes_per_s: float,
    max_events: int = 100_000,
) -> float:
    """Time until the last flow completes under max-min fair sharing."""
    remaining = [(f.src_node, f.dst_node, float(f.nbytes)) for f in flows if f.nbytes > 0]
    nodes = {f.src_node for f in flows} | {f.dst_node for f in flows}
    egress = {node: link_bytes_per_s for node in nodes}
    ingress = {node: link_bytes_per_s for node in nodes}

    clock = 0.0
    for _ in range(max_events):
        if not remaining:
            return clock
        rates = maxmin_rates(remaining, egress, ingress)
        if not np.all(rates > 0):
            raise RuntimeError("network simulation stalled: zero-rate flow")
        times = np.array([r[2] for r in remaining]) / rates
        dt = float(times.min())
        clock += dt
        survivors = []
        for (src, dst, nbytes), rate, t in zip(remaining, rates, times):
            if t > dt * (1 + 1e-12):
                survivors.append((src, dst, nbytes - rate * dt))
        remaining = survivors
    raise RuntimeError(f"network simulation exceeded {max_events} events")


def flows_for_round(
    plan: GlobalPlan,
    round_index: int,
    rank_to_node: list[int],
    schedules: Optional[Sequence[ExchangeSchedule]] = None,
) -> list[Flow]:
    """Build the flow set of one exchange round from the schedule IR.

    Transfers between ranks on the same node never touch the NIC and are
    excluded (they are covered by the analytic model's memcpy term); so are
    self-transfers, which the IR already splits out of the send lanes.
    """
    if schedules is None:
        schedules = global_schedules(plan)
    flows: list[Flow] = []
    for schedule in schedules:
        src_node = rank_to_node[schedule.rank]
        for lane in schedule.rounds[round_index].sends:
            dst_node = rank_to_node[lane.peer]
            if src_node == dst_node:
                continue
            flows.append(Flow(src_node, dst_node, lane.nbytes))
    return flows


def simulate_exchange(
    cluster: ClusterSpec,
    plan: GlobalPlan,
    rank_to_node: list[int] | None = None,
    engine: str = "alltoallw",
) -> float:
    """Total modeled exchange time: per-round DES transfer + software overhead.

    The wire transfers are engine-independent (the same bytes move between
    the same nodes); the engines differ in the per-round software term —
    ``alpha(P)`` for a collective round, one rendezvous handshake per
    message (serialised on the busiest rank) for a direct round.  ``engine``
    is ``"alltoallw"``, ``"p2p"``, or ``"auto"`` (the executed
    per-round selection rule).
    """
    if engine not in ("alltoallw", "p2p", "auto"):
        raise ValueError(
            f"unknown engine {engine!r}; choose 'alltoallw', 'p2p', or 'auto'"
        )
    if rank_to_node is None:
        rank_to_node = default_rank_to_node(plan.nprocs, cluster.procs_per_node)
    schedules = global_schedules(plan)
    total = 0.0
    for round_index in range(plan.nrounds):
        rounds = [s.rounds[round_index] for s in schedules]
        if engine == "alltoallw":
            collective = True
        elif engine == "p2p":
            collective = False
        else:
            max_partners = max((r.max_partners for r in rounds), default=0)
            collective = collective_preferred(max_partners, plan.nprocs)
        if collective:
            total += cluster.alpha(plan.nprocs)
        else:
            worst_messages = max((r.message_count for r in rounds), default=0)
            total += worst_messages * P2P_PER_MESSAGE_S
        flows = flows_for_round(plan, round_index, rank_to_node, schedules)
        if flows:
            total += simulate_flows(flows, cluster.link_bytes_per_s)
    return total
