"""Filesystem model: read+decode time for image-series loading.

The dominant costs in the paper's TIFF experiment are (a) decoding whole
images that are mostly thrown away (the no-DDR case) and (b) shared
filesystem saturation once hundreds of readers stream concurrently.  Both
are modeled per :class:`~repro.netmodel.cluster.ClusterSpec`.
"""

from __future__ import annotations

from .cluster import ClusterSpec


def fs_saturation_factor(cluster: ClusterSpec, concurrent_readers: int) -> float:
    """Slowdown when aggregate demand exceeds the filesystem's peak.

    ``max(1, (demand / peak) ** exp)`` — sublinear because parallel
    filesystems degrade gracefully rather than dividing bandwidth exactly.
    """
    demand = concurrent_readers * cluster.read_decode_bw
    ratio = demand / cluster.fs_peak_bw
    if ratio <= 1.0:
        return 1.0
    return ratio**cluster.fs_saturation_exp


def image_read_time(
    cluster: ClusterSpec, image_bytes: int, concurrent_readers: int
) -> float:
    """Wall time for one rank to open + read + decode one image."""
    base = cluster.file_open_s + image_bytes / cluster.read_decode_bw
    return base * fs_saturation_factor(cluster, concurrent_readers)


def stack_read_time(
    cluster: ClusterSpec,
    images_per_process: int,
    image_bytes: int,
    concurrent_readers: int,
) -> float:
    """Wall time for the slowest rank to read its assigned images.

    ``images_per_process`` should be the *maximum* per-rank count: the load
    phase ends when the last reader finishes.
    """
    return images_per_process * image_read_time(cluster, image_bytes, concurrent_readers)
