"""Cluster specifications for the performance model.

The paper ran on Argonne's Cooley visualization cluster: 126 nodes, two
GPUs (and two MPI ranks in these experiments) per node, one FDR InfiniBand
56 Gbps link per node, GPFS-class shared filesystem.  The :data:`COOLEY`
constants below are *calibrated* to the paper's measured Table II — the
calibration procedure and residuals are documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..utils.units import gbit_per_s


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters of the machine + MPI performance model.

    Network model (per ``Alltoallw`` call):

    ``t = alpha(P) + m / eff_bw(m)`` where ``m`` is the bytes a process
    sends in the round, ``alpha(P) = alltoallw_alpha_base +
    alltoallw_alpha_per_rank * P`` is the collective's software overhead
    (P*P message postings), and ``eff_bw(m) = link_share / (1 + m /
    congestion_bytes)`` captures the large-message congestion the paper
    blames for the consecutive strategy's loss at small scale ("This
    creates network contention on the single 56 Gbps link available per
    node").

    Disk model (per image): ``t = file_open_s + image_bytes /
    read_decode_bw`` scaled by a filesystem saturation factor
    ``max(1, (P * read_decode_bw / fs_peak_bw) ** fs_saturation_exp)``.
    """

    name: str
    nodes: int
    procs_per_node: int
    link_bytes_per_s: float
    alltoallw_alpha_base: float
    alltoallw_alpha_per_rank: float
    congestion_bytes: float
    read_decode_bw: float
    file_open_s: float
    fs_peak_bw: float
    fs_saturation_exp: float
    memcpy_bw: float

    @property
    def proc_link_share(self) -> float:
        """Per-process share of the node NIC when all ranks drive it."""
        return self.link_bytes_per_s / self.procs_per_node

    def alpha(self, nprocs: int) -> float:
        """Per-call Alltoallw software overhead at ``nprocs`` ranks."""
        return self.alltoallw_alpha_base + self.alltoallw_alpha_per_rank * nprocs

    def effective_bw(self, message_bytes: float) -> float:
        """Per-process achievable bandwidth for one round's payload."""
        if message_bytes <= 0:
            return self.proc_link_share
        return self.proc_link_share / (1.0 + message_bytes / self.congestion_bytes)

    def with_(self, **overrides) -> "ClusterSpec":
        """Copy with fields replaced (for sensitivity sweeps)."""
        return replace(self, **overrides)


#: Cooley, calibrated against the paper's Table II.  Physical constants
#: (nodes, ranks/node, link speed) are from the paper; the remaining
#: parameters were fit to the measured load times (see EXPERIMENTS.md §T2).
COOLEY = ClusterSpec(
    name="cooley",
    nodes=126,
    procs_per_node=2,
    link_bytes_per_s=gbit_per_s(56),  # FDR InfiniBand
    alltoallw_alpha_base=1.4e-3,
    alltoallw_alpha_per_rank=6.9e-4,
    congestion_bytes=4.2e8,  # ~420 MB: large alltoallw payloads degrade
    read_decode_bw=172e6,  # TIFF read+decode is decode-bound at ~172 MB/s
    file_open_s=5e-3,
    fs_peak_bw=18e9,  # shared-filesystem aggregate saturation
    fs_saturation_exp=0.35,  # sublinear degradation past saturation
    memcpy_bw=5e9,
)
