"""Analytic cost model for DDR's Alltoallw exchange.

Reads the *actual* schedule produced by the planner (rounds, per-round
payloads, traffic matrix) and converts it into wall time under the
LogGP-style model in :class:`~repro.netmodel.cluster.ClusterSpec`.  This is
the model behind the Table II predictions and the Figure 3 scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.plan import GlobalPlan
from .cluster import ClusterSpec


@dataclass(frozen=True)
class ExchangeCost:
    """Per-phase breakdown of a full redistribution."""

    rounds: int
    alpha_s: float  # collective software overhead, all rounds
    transfer_s: float  # serialization through the per-process link share
    self_copy_s: float  # local memcpy of data a rank keeps
    mean_round_payload: float  # bytes/rank/round (Table III statistic)

    @property
    def total_s(self) -> float:
        return self.alpha_s + self.transfer_s + self.self_copy_s


def round_payloads(plan: GlobalPlan) -> list[float]:
    """Max bytes any rank sends (to others) in each round.

    The collective completes when the busiest rank drains, so the max —
    not the mean — drives round time.
    """
    out = []
    for round_index in range(plan.nrounds):
        worst = 0
        for rank_plan in plan.rank_plans:
            sent = sum(
                entry.overlap.volume()
                for entry in rank_plan.sends
                if entry.round == round_index and entry.dest != rank_plan.rank
            )
            worst = max(worst, sent)
        out.append(worst * plan.element_size)
    return out


def exchange_cost(cluster: ClusterSpec, plan: GlobalPlan) -> ExchangeCost:
    """Model one full redistribution (all rounds) on ``cluster``."""
    payloads = round_payloads(plan)
    alpha_s = cluster.alpha(plan.nprocs) * plan.nrounds
    transfer_s = sum(m / cluster.effective_bw(m) for m in payloads)

    self_bytes = max(
        (
            sum(e.overlap.volume() for e in p.sends if e.dest == p.rank)
            for p in plan.rank_plans
        ),
        default=0,
    ) * plan.element_size
    self_copy_s = self_bytes / cluster.memcpy_bw

    return ExchangeCost(
        rounds=plan.nrounds,
        alpha_s=alpha_s,
        transfer_s=transfer_s,
        self_copy_s=self_copy_s,
        mean_round_payload=plan.mean_bytes_per_chunk_round(),
    )


def point_to_point_cost(cluster: ClusterSpec, plan: GlobalPlan) -> float:
    """Model the direct-send backend (paper future work) for the ablation.

    Each rank pays a fixed per-message latency per partner instead of the
    collective's O(P) posting overhead, plus the same serialization time.
    """
    per_message_s = 5e-6  # rendezvous handshake
    total = 0.0
    for round_index in range(plan.nrounds):
        worst = 0.0
        for rank_plan in plan.rank_plans:
            sent = 0
            messages = 0
            for entry in rank_plan.sends:
                if entry.round == round_index and entry.dest != rank_plan.rank:
                    sent += entry.overlap.volume()
                    messages += 1
            bytes_sent = sent * plan.element_size
            t = messages * per_message_s + bytes_sent / cluster.effective_bw(bytes_sent)
            worst = max(worst, t)
        total += worst
    return total
