"""Analytic cost model for DDR's exchange engines.

Reads the *actual* schedule produced by the planner — lowered to the same
:class:`~repro.core.schedule.ExchangeSchedule` IR the execution engines
replay — and converts it into wall time under the LogGP-style model in
:class:`~repro.netmodel.cluster.ClusterSpec`.  This is the model behind the
Table II predictions and the Figure 3 scaling curves.

Per-engine costs (:func:`engine_cost`) share one per-round vocabulary:

- a *collective* round pays the O(P) posting overhead ``alpha(P)`` plus the
  busiest rank's payload serialised through its link share;
- a *direct* round pays a rendezvous handshake per message instead of the
  collective overhead, plus the same serialisation — the busiest rank again
  sets the round time.

``alltoallw`` prices every round as collective, ``p2p`` every round as
direct, and ``auto`` applies the same per-round selection rule the
``AutoEngine`` executes (:func:`repro.core.schedule.collective_preferred`),
so predicted and executed engine choices agree by construction.

With a memory budget (``limit_bytes``) the vocabulary gains a third round
shape: a *bounded* round pays a handshake per budget-sized piece plus
serialisation at piece-size bandwidth, in exchange for a staging peak
capped by the piece count in flight.  :func:`pareto_round_backend` is the
(time, peak-memory) Pareto rule ``AutoEngine`` executes under a budget —
again shared, so predicted and executed choices agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.plan import GlobalPlan
from ..core.schedule import (
    DEFAULT_BOUNDED_CHUNK_BYTES,
    PIECE_INFLIGHT,
    ExchangeSchedule,
    chunk_bytes_for,
    collective_preferred,
    global_schedules,
)
from .cluster import ClusterSpec

#: Modeled cost of one rendezvous handshake on the direct-send path.
P2P_PER_MESSAGE_S = 5e-6

#: Modeled per-piece overhead on the bounded path: the receive post plus
#: the eagerly staged send of each lowered piece.
BOUNDED_PER_PIECE_S = 2 * P2P_PER_MESSAGE_S


@dataclass(frozen=True)
class ExchangeCost:
    """Per-phase breakdown of a full redistribution."""

    rounds: int
    alpha_s: float  # collective software overhead, all rounds
    transfer_s: float  # serialization through the per-process link share
    self_copy_s: float  # local memcpy of data a rank keeps
    mean_round_payload: float  # bytes/rank/round (Table III statistic)

    @property
    def total_s(self) -> float:
        return self.alpha_s + self.transfer_s + self.self_copy_s


@dataclass(frozen=True)
class EngineCost:
    """Modeled cost of one redistribution under a specific engine."""

    backend: str
    rounds: int
    alpha_s: float  # collective posting overhead (collective rounds only)
    message_s: float  # rendezvous handshakes (direct rounds only)
    transfer_s: float  # serialization through the per-process link share
    self_copy_s: float  # local memcpy of data a rank keeps
    round_engines: tuple[str, ...]  # per-round protocol actually priced

    @property
    def total_s(self) -> float:
        return self.alpha_s + self.message_s + self.transfer_s + self.self_copy_s


def round_payloads(
    plan: GlobalPlan, schedules: Optional[Sequence[ExchangeSchedule]] = None
) -> list[int]:
    """Max bytes any rank sends (to others) in each round.

    The collective completes when the busiest rank drains, so the max —
    not the mean — drives round time.
    """
    if schedules is None:
        schedules = global_schedules(plan)
    return [
        max((s.rounds[r].bytes_out for s in schedules), default=0)
        for r in range(plan.nrounds)
    ]


def _self_copy_s(cluster: ClusterSpec, schedules: Sequence[ExchangeSchedule]) -> float:
    """Worst rank's local memcpy of the data it keeps across all rounds."""
    self_bytes = max((s.total_self_bytes for s in schedules), default=0)
    return self_bytes / cluster.memcpy_bw


def pareto_round_backend(
    cluster: ClusterSpec,
    *,
    nprocs: int,
    max_partners: int,
    max_round_bytes: int,
    limit_bytes: Optional[int],
    chunk_bytes: Optional[int] = None,
) -> str:
    """The budget-aware per-round selection rule (executed by ``AutoEngine``).

    Every input is either a global plan statistic (identical on all ranks
    by construction) or the static budget limit, so every rank returns the
    same backend with no negotiation.  Candidates are priced on both axes:

    - ``alltoallw`` / ``p2p``: the time model's collective/direct round
      shapes, both peaking at ``max_round_bytes`` of staging;
    - ``bounded``: per-piece handshakes and piece-size bandwidth, peaking
      at ``PIECE_INFLIGHT`` resident pieces.

    Among candidates whose peak fits ``limit_bytes``, the modeled-fastest
    wins; when none fit, the minimum-peak one does (best effort — the
    ledger still enforces the hard line with a typed error).
    """
    dense = collective_preferred(max_partners, nprocs)
    strict = "alltoallw" if dense else "p2p"
    if limit_bytes is None or max_round_bytes <= 0:
        return strict
    if chunk_bytes is None:
        chunk_bytes = chunk_bytes_for(limit_bytes)
    # The staged peak counts the busiest rank's payload twice (sends staged
    # + receives in flight); halve it back to an outbound volume for time.
    payload = max(1, max_round_bytes // 2)
    xfer = payload / cluster.effective_bw(payload)
    pieces = -(-payload // chunk_bytes)
    bounded_t = pieces * BOUNDED_PER_PIECE_S + payload / cluster.effective_bw(
        min(payload, chunk_bytes)
    )
    candidates = (
        (cluster.alpha(nprocs) + xfer, max_round_bytes, "alltoallw"),
        (max_partners * P2P_PER_MESSAGE_S + xfer, max_round_bytes, "p2p"),
        (bounded_t, min(max_round_bytes, PIECE_INFLIGHT * chunk_bytes), "bounded"),
    )
    fits = [c for c in candidates if c[1] <= limit_bytes]
    if fits:
        return min(fits, key=lambda c: c[0])[2]
    return min(candidates, key=lambda c: (c[1], c[0]))[2]


def engine_cost(
    cluster: ClusterSpec,
    plan: GlobalPlan,
    backend: str = "alltoallw",
    schedules: Optional[Sequence[ExchangeSchedule]] = None,
    limit_bytes: Optional[int] = None,
) -> EngineCost:
    """Model one full redistribution under ``backend`` on ``cluster``.

    ``backend`` is ``"alltoallw"``, ``"p2p"``, ``"auto"``, or ``"bounded"``
    — the same names :func:`repro.core.engine.get_engine` accepts.  With
    ``limit_bytes`` set, ``auto`` rounds are selected by
    :func:`pareto_round_backend` (time alone otherwise) and bounded rounds
    are priced with the limit's derived piece size.
    """
    if backend not in ("alltoallw", "p2p", "auto", "bounded"):
        raise ValueError(
            f"unknown backend {backend!r}; choose 'alltoallw', 'p2p', "
            "'auto', or 'bounded'"
        )
    if schedules is None:
        schedules = global_schedules(plan)
    chunk_bytes = (
        chunk_bytes_for(limit_bytes)
        if limit_bytes is not None
        else DEFAULT_BOUNDED_CHUNK_BYTES
    )

    alpha_s = 0.0
    message_s = 0.0
    transfer_s = 0.0
    round_engines: list[str] = []
    for round_index in range(plan.nrounds):
        rounds = [s.rounds[round_index] for s in schedules]
        if backend in ("alltoallw", "p2p", "bounded"):
            mode = backend
        else:
            max_partners = max((r.max_partners for r in rounds), default=0)
            if limit_bytes is None:
                mode = (
                    "alltoallw"
                    if collective_preferred(max_partners, plan.nprocs)
                    else "p2p"
                )
            else:
                peak = max(
                    (r.max_round_bytes or r.peak_bytes() for r in rounds), default=0
                )
                mode = pareto_round_backend(
                    cluster,
                    nprocs=plan.nprocs,
                    max_partners=max_partners,
                    max_round_bytes=peak,
                    limit_bytes=limit_bytes,
                    chunk_bytes=chunk_bytes,
                )
        round_engines.append(mode)

        if mode == "alltoallw":
            alpha_s += cluster.alpha(plan.nprocs)
            payload = max((r.bytes_out for r in rounds), default=0)
            transfer_s += payload / cluster.effective_bw(payload)
        elif mode == "bounded":
            # The busiest rank again sets the round time, paying a
            # handshake per lowered piece and serialising at the (smaller)
            # piece size's effective bandwidth.
            worst_t = 0.0
            worst_msg = 0.0
            worst_xfer = 0.0
            for r in rounds:
                pieces = sum(
                    -(-lane.nbytes // chunk_bytes) for lane in r.sends
                )
                msg = pieces * BOUNDED_PER_PIECE_S
                xfer = r.bytes_out / cluster.effective_bw(
                    min(r.bytes_out, chunk_bytes) or 1
                )
                if msg + xfer > worst_t:
                    worst_t = msg + xfer
                    worst_msg = msg
                    worst_xfer = xfer
            message_s += worst_msg
            transfer_s += worst_xfer
        else:
            # The busiest rank sets the round time; attribute its handshake
            # and serialisation shares separately so the sum stays exact.
            worst_t = 0.0
            worst_msg = 0.0
            worst_xfer = 0.0
            for r in rounds:
                msg = r.message_count * P2P_PER_MESSAGE_S
                xfer = r.bytes_out / cluster.effective_bw(r.bytes_out)
                if msg + xfer > worst_t:
                    worst_t = msg + xfer
                    worst_msg = msg
                    worst_xfer = xfer
            message_s += worst_msg
            transfer_s += worst_xfer

    return EngineCost(
        backend=backend,
        rounds=plan.nrounds,
        alpha_s=alpha_s,
        message_s=message_s,
        transfer_s=transfer_s,
        self_copy_s=_self_copy_s(cluster, schedules),
        round_engines=tuple(round_engines),
    )


def exchange_cost(cluster: ClusterSpec, plan: GlobalPlan) -> ExchangeCost:
    """Model one full redistribution (all rounds, ``Alltoallw``) on ``cluster``."""
    cost = engine_cost(cluster, plan, "alltoallw")
    return ExchangeCost(
        rounds=cost.rounds,
        alpha_s=cost.alpha_s,
        transfer_s=cost.transfer_s,
        self_copy_s=cost.self_copy_s,
        mean_round_payload=plan.mean_bytes_per_chunk_round(),
    )


def point_to_point_cost(cluster: ClusterSpec, plan: GlobalPlan) -> float:
    """Model the direct-send backend's wire time for the ablation.

    Each rank pays a fixed per-message latency per partner instead of the
    collective's O(P) posting overhead, plus the same serialization time.
    (Wire time only: the self-copy term cancels in backend comparisons.)
    """
    cost = engine_cost(cluster, plan, "p2p")
    return cost.message_s + cost.transfer_s
