"""Analytic cost model for DDR's exchange engines.

Reads the *actual* schedule produced by the planner — lowered to the same
:class:`~repro.core.schedule.ExchangeSchedule` IR the execution engines
replay — and converts it into wall time under the LogGP-style model in
:class:`~repro.netmodel.cluster.ClusterSpec`.  This is the model behind the
Table II predictions and the Figure 3 scaling curves.

Per-engine costs (:func:`engine_cost`) share one per-round vocabulary:

- a *collective* round pays the O(P) posting overhead ``alpha(P)`` plus the
  busiest rank's payload serialised through its link share;
- a *direct* round pays a rendezvous handshake per message instead of the
  collective overhead, plus the same serialisation — the busiest rank again
  sets the round time.

``alltoallw`` prices every round as collective, ``p2p`` every round as
direct, and ``auto`` applies the same per-round selection rule the
``AutoEngine`` executes (:func:`repro.core.schedule.collective_preferred`),
so predicted and executed engine choices agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.plan import GlobalPlan
from ..core.schedule import ExchangeSchedule, collective_preferred, global_schedules
from .cluster import ClusterSpec

#: Modeled cost of one rendezvous handshake on the direct-send path.
P2P_PER_MESSAGE_S = 5e-6


@dataclass(frozen=True)
class ExchangeCost:
    """Per-phase breakdown of a full redistribution."""

    rounds: int
    alpha_s: float  # collective software overhead, all rounds
    transfer_s: float  # serialization through the per-process link share
    self_copy_s: float  # local memcpy of data a rank keeps
    mean_round_payload: float  # bytes/rank/round (Table III statistic)

    @property
    def total_s(self) -> float:
        return self.alpha_s + self.transfer_s + self.self_copy_s


@dataclass(frozen=True)
class EngineCost:
    """Modeled cost of one redistribution under a specific engine."""

    backend: str
    rounds: int
    alpha_s: float  # collective posting overhead (collective rounds only)
    message_s: float  # rendezvous handshakes (direct rounds only)
    transfer_s: float  # serialization through the per-process link share
    self_copy_s: float  # local memcpy of data a rank keeps
    round_engines: tuple[str, ...]  # per-round protocol actually priced

    @property
    def total_s(self) -> float:
        return self.alpha_s + self.message_s + self.transfer_s + self.self_copy_s


def round_payloads(
    plan: GlobalPlan, schedules: Optional[Sequence[ExchangeSchedule]] = None
) -> list[int]:
    """Max bytes any rank sends (to others) in each round.

    The collective completes when the busiest rank drains, so the max —
    not the mean — drives round time.
    """
    if schedules is None:
        schedules = global_schedules(plan)
    return [
        max((s.rounds[r].bytes_out for s in schedules), default=0)
        for r in range(plan.nrounds)
    ]


def _self_copy_s(cluster: ClusterSpec, schedules: Sequence[ExchangeSchedule]) -> float:
    """Worst rank's local memcpy of the data it keeps across all rounds."""
    self_bytes = max((s.total_self_bytes for s in schedules), default=0)
    return self_bytes / cluster.memcpy_bw


def engine_cost(
    cluster: ClusterSpec,
    plan: GlobalPlan,
    backend: str = "alltoallw",
    schedules: Optional[Sequence[ExchangeSchedule]] = None,
) -> EngineCost:
    """Model one full redistribution under ``backend`` on ``cluster``.

    ``backend`` is ``"alltoallw"``, ``"p2p"``, or ``"auto"`` — the same
    names :func:`repro.core.engine.get_engine` accepts.
    """
    if backend not in ("alltoallw", "p2p", "auto"):
        raise ValueError(
            f"unknown backend {backend!r}; choose 'alltoallw', 'p2p', or 'auto'"
        )
    if schedules is None:
        schedules = global_schedules(plan)

    alpha_s = 0.0
    message_s = 0.0
    transfer_s = 0.0
    round_engines: list[str] = []
    for round_index in range(plan.nrounds):
        rounds = [s.rounds[round_index] for s in schedules]
        if backend == "alltoallw":
            collective = True
        elif backend == "p2p":
            collective = False
        else:
            max_partners = max((r.max_partners for r in rounds), default=0)
            collective = collective_preferred(max_partners, plan.nprocs)
        round_engines.append("alltoallw" if collective else "p2p")

        if collective:
            alpha_s += cluster.alpha(plan.nprocs)
            payload = max((r.bytes_out for r in rounds), default=0)
            transfer_s += payload / cluster.effective_bw(payload)
        else:
            # The busiest rank sets the round time; attribute its handshake
            # and serialisation shares separately so the sum stays exact.
            worst_t = 0.0
            worst_msg = 0.0
            worst_xfer = 0.0
            for r in rounds:
                msg = r.message_count * P2P_PER_MESSAGE_S
                xfer = r.bytes_out / cluster.effective_bw(r.bytes_out)
                if msg + xfer > worst_t:
                    worst_t = msg + xfer
                    worst_msg = msg
                    worst_xfer = xfer
            message_s += worst_msg
            transfer_s += worst_xfer

    return EngineCost(
        backend=backend,
        rounds=plan.nrounds,
        alpha_s=alpha_s,
        message_s=message_s,
        transfer_s=transfer_s,
        self_copy_s=_self_copy_s(cluster, schedules),
        round_engines=tuple(round_engines),
    )


def exchange_cost(cluster: ClusterSpec, plan: GlobalPlan) -> ExchangeCost:
    """Model one full redistribution (all rounds, ``Alltoallw``) on ``cluster``."""
    cost = engine_cost(cluster, plan, "alltoallw")
    return ExchangeCost(
        rounds=cost.rounds,
        alpha_s=cost.alpha_s,
        transfer_s=cost.transfer_s,
        self_copy_s=cost.self_copy_s,
        mean_round_payload=plan.mean_bytes_per_chunk_round(),
    )


def point_to_point_cost(cluster: ClusterSpec, plan: GlobalPlan) -> float:
    """Model the direct-send backend's wire time for the ablation.

    Each rank pays a fixed per-message latency per partner instead of the
    collective's O(P) posting overhead, plus the same serialization time.
    (Wire time only: the self-copy term cancels in backend comparisons.)
    """
    cost = engine_cost(cluster, plan, "p2p")
    return cost.message_s + cost.transfer_s
