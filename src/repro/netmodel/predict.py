"""Full-scale predictions for the paper's Table II and Figure 3.

Combines the *actual* DDR schedule (from the planner, at the paper's full
128 GB geometry) with the calibrated Cooley model: disk model for the read
phase, network model (analytic or discrete-event) for the exchange phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..core.plan import GlobalPlan, compute_global_plan
from ..io.assignment import (
    Assignment,
    PAPER_STACK,
    StackGeometry,
    all_owned_chunks,
    assigned_images,
)
from ..volren.decompose import grid_boxes, grid_shape
from .analytic import EngineCost, engine_cost
from .cluster import COOLEY, ClusterSpec
from .desnet import simulate_exchange
from .disk import stack_read_time

#: Table II / Figure 3 process counts: 3^3, 4^3, 5^3, 6^3.
PAPER_PROCESS_COUNTS = (27, 64, 125, 216)


@dataclass(frozen=True)
class LoadPrediction:
    """Predicted load time for one (process count, strategy) cell."""

    nprocs: int
    mode: str  # "no_ddr" | "ddr_round_robin" | "ddr_consecutive"
    read_s: float
    exchange_s: float
    rounds: int
    round_payload_bytes: float  # mean per-rank payload per round (Table III)

    @property
    def total_s(self) -> float:
        return self.read_s + self.exchange_s


def paper_grid(nprocs: int, stack: StackGeometry) -> tuple[int, int, int]:
    """Per-axis process grid: perfect cubes split g x g x g like the paper;
    other counts fall back to the near-cubic search."""
    g = round(nprocs ** (1 / 3))
    if g**3 == nprocs:
        return (g, g, g)
    grid = tuple(int(v) for v in grid_shape(nprocs, stack.volume_dims))
    # grid_shape returns one factor per volume axis; anything else means the
    # stack geometry was not the 3-D volume this predictor models.
    if len(grid) != 3:
        raise ValueError(
            f"process grid for {nprocs} ranks over {stack.volume_dims} has "
            f"{len(grid)} axes, expected 3"
        )
    return grid


def needed_boxes(nprocs: int, stack: StackGeometry) -> list:
    return grid_boxes(stack.volume_dims, paper_grid(nprocs, stack))


@lru_cache(maxsize=32)
def _plan_cached(
    nprocs: int, strategy_value: str, stack_key: tuple[int, int, int, int]
) -> GlobalPlan:
    stack = StackGeometry(*stack_key)
    strategy = Assignment(strategy_value)
    owns = all_owned_chunks(stack, nprocs, strategy)
    needs = needed_boxes(nprocs, stack)
    return compute_global_plan(owns, needs, stack.bytes_per_pixel)


def ddr_plan(
    nprocs: int, strategy: Assignment, stack: StackGeometry = PAPER_STACK
) -> GlobalPlan:
    """The (cached) full-scale redistribution schedule for one strategy."""
    key = (stack.width, stack.height, stack.n_images, stack.bytes_per_pixel)
    return _plan_cached(nprocs, strategy.value, key)


def predict_no_ddr(
    cluster: ClusterSpec, nprocs: int, stack: StackGeometry = PAPER_STACK
) -> LoadPrediction:
    """Baseline: every rank reads and decodes every image its block touches
    (paper: "Reading and decoding entire images on each process leads to
    many processes loading the same image")."""
    needs = needed_boxes(nprocs, stack)
    images_per_rank = max(box.dims[2] for box in needs)
    read_s = stack_read_time(cluster, images_per_rank, stack.image_bytes, nprocs)
    return LoadPrediction(
        nprocs=nprocs,
        mode="no_ddr",
        read_s=read_s,
        exchange_s=0.0,
        rounds=0,
        round_payload_bytes=0.0,
    )


def predict_ddr(
    cluster: ClusterSpec,
    nprocs: int,
    strategy: Assignment,
    stack: StackGeometry = PAPER_STACK,
    network: str = "analytic",
    backend: str = "alltoallw",
) -> LoadPrediction:
    """DDR path: load-balanced reads, then the modeled redistribution.

    ``backend`` picks the exchange engine being modeled (``"alltoallw"``,
    ``"p2p"``, or ``"auto"``) — the same names the execution layer accepts,
    and the same per-round auto-selection rule.
    """
    images_per_rank = max(
        len(assigned_images(stack, nprocs, rank, strategy)) for rank in range(nprocs)
    )
    read_s = stack_read_time(cluster, images_per_rank, stack.image_bytes, nprocs)
    plan = ddr_plan(nprocs, strategy, stack)
    if network == "des":
        exchange_s = simulate_exchange(cluster, plan, engine=backend)
        payload = plan.mean_bytes_per_chunk_round()
    elif network == "analytic":
        cost: EngineCost = engine_cost(cluster, plan, backend)
        exchange_s = cost.total_s
        payload = plan.mean_bytes_per_chunk_round()
    else:
        raise ValueError(f"unknown network model {network!r} (use 'analytic' or 'des')")
    return LoadPrediction(
        nprocs=nprocs,
        mode=f"ddr_{strategy.value}",
        read_s=read_s,
        exchange_s=exchange_s,
        rounds=plan.nrounds,
        round_payload_bytes=payload,
    )


def predict_table2(
    cluster: ClusterSpec = COOLEY,
    stack: StackGeometry = PAPER_STACK,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    network: str = "analytic",
) -> list[dict]:
    """One dict per Table II row: process count and the three load times."""
    rows = []
    for nprocs in process_counts:
        no_ddr = predict_no_ddr(cluster, nprocs, stack)
        rr = predict_ddr(cluster, nprocs, Assignment.ROUND_ROBIN, stack, network)
        consec = predict_ddr(cluster, nprocs, Assignment.CONSECUTIVE, stack, network)
        rows.append(
            {
                "nprocs": nprocs,
                "no_ddr_s": no_ddr.total_s,
                "ddr_round_robin_s": rr.total_s,
                "ddr_consecutive_s": consec.total_s,
                "round_robin": rr,
                "consecutive": consec,
                "no_ddr": no_ddr,
            }
        )
    return rows


def figure3_series(
    cluster: ClusterSpec = COOLEY,
    stack: StackGeometry = PAPER_STACK,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
) -> dict[str, list[float]]:
    """Figure 3's three strong-scaling curves (seconds vs process count)."""
    rows = predict_table2(cluster, stack, process_counts)
    return {
        "nprocs": [row["nprocs"] for row in rows],
        "no_ddr": [row["no_ddr_s"] for row in rows],
        "ddr_round_robin": [row["ddr_round_robin_s"] for row in rows],
        "ddr_consecutive": [row["ddr_consecutive_s"] for row in rows],
    }
