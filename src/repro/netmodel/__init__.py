"""Cluster performance model (calibrated to the paper's Cooley results)."""

from .analytic import (
    P2P_PER_MESSAGE_S,
    EngineCost,
    ExchangeCost,
    engine_cost,
    exchange_cost,
    point_to_point_cost,
    round_payloads,
)
from .cluster import COOLEY, ClusterSpec
from .desnet import (
    Flow,
    default_rank_to_node,
    flows_for_round,
    maxmin_rates,
    simulate_exchange,
    simulate_flows,
)
from .disk import fs_saturation_factor, image_read_time, stack_read_time
from .sensitivity import (
    FITTED_PARAMETERS,
    SweepPoint,
    TornadoBar,
    crossover,
    headline_speedup,
    sweep_parameter,
    tornado,
)
from .predict import (
    LoadPrediction,
    PAPER_PROCESS_COUNTS,
    ddr_plan,
    figure3_series,
    needed_boxes,
    paper_grid,
    predict_ddr,
    predict_no_ddr,
    predict_table2,
)

__all__ = [
    "COOLEY",
    "ClusterSpec",
    "EngineCost",
    "ExchangeCost",
    "FITTED_PARAMETERS",
    "Flow",
    "LoadPrediction",
    "P2P_PER_MESSAGE_S",
    "PAPER_PROCESS_COUNTS",
    "SweepPoint",
    "TornadoBar",
    "crossover",
    "ddr_plan",
    "default_rank_to_node",
    "engine_cost",
    "exchange_cost",
    "figure3_series",
    "flows_for_round",
    "fs_saturation_factor",
    "headline_speedup",
    "image_read_time",
    "maxmin_rates",
    "needed_boxes",
    "paper_grid",
    "point_to_point_cost",
    "predict_ddr",
    "predict_no_ddr",
    "predict_table2",
    "round_payloads",
    "simulate_exchange",
    "simulate_flows",
    "stack_read_time",
    "sweep_parameter",
    "tornado",
]
