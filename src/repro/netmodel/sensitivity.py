"""Sensitivity analysis of the calibrated performance model.

Table II's qualitative claims (DDR >> no-DDR; round-robin/consecutive
crossover between 64 and 125 ranks; ~25x headline speedup) should be robust
to the fitted constants, not knife-edge artifacts of the calibration.
These tools quantify that: parameter sweeps, crossover tracking, and a
tornado summary of which constant moves the headline most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..io.assignment import PAPER_STACK, StackGeometry
from .cluster import COOLEY, ClusterSpec
from .predict import PAPER_PROCESS_COUNTS, predict_ddr, predict_no_ddr
from ..io.assignment import Assignment

#: The fitted (non-physical) constants eligible for perturbation.
FITTED_PARAMETERS = (
    "read_decode_bw",
    "file_open_s",
    "fs_peak_bw",
    "fs_saturation_exp",
    "alltoallw_alpha_base",
    "alltoallw_alpha_per_rank",
    "congestion_bytes",
    "memcpy_bw",
)


def headline_speedup(
    cluster: ClusterSpec,
    nprocs: int = 216,
    stack: StackGeometry = PAPER_STACK,
) -> float:
    """no-DDR time over best-DDR time at ``nprocs`` (paper: 24.9x at 216)."""
    no_ddr = predict_no_ddr(cluster, nprocs, stack).total_s
    rr = predict_ddr(cluster, nprocs, Assignment.ROUND_ROBIN, stack).total_s
    consec = predict_ddr(cluster, nprocs, Assignment.CONSECUTIVE, stack).total_s
    return no_ddr / min(rr, consec)


def crossover(
    cluster: ClusterSpec,
    stack: StackGeometry = PAPER_STACK,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
) -> int | None:
    """First process count where consecutive beats round-robin."""
    for nprocs in process_counts:
        rr = predict_ddr(cluster, nprocs, Assignment.ROUND_ROBIN, stack).total_s
        consec = predict_ddr(cluster, nprocs, Assignment.CONSECUTIVE, stack).total_s
        if consec < rr:
            return nprocs
    return None


@dataclass(frozen=True)
class SweepPoint:
    parameter: str
    value: float
    speedup_216: float
    crossover: int | None


def sweep_parameter(
    parameter: str,
    factors: Sequence[float],
    cluster: ClusterSpec = COOLEY,
    stack: StackGeometry = PAPER_STACK,
) -> list[SweepPoint]:
    """Scale one fitted parameter by each factor; track the two headlines."""
    if parameter not in FITTED_PARAMETERS:
        raise ValueError(
            f"{parameter!r} is not a fitted parameter (options: {FITTED_PARAMETERS})"
        )
    base = getattr(cluster, parameter)
    out = []
    for factor in factors:
        perturbed = cluster.with_(**{parameter: base * factor})
        out.append(
            SweepPoint(
                parameter=parameter,
                value=base * factor,
                speedup_216=headline_speedup(perturbed, stack=stack),
                crossover=crossover(perturbed, stack=stack),
            )
        )
    return out


@dataclass(frozen=True)
class TornadoBar:
    parameter: str
    low_speedup: float  # at 0.7x the fitted value
    high_speedup: float  # at 1.3x

    @property
    def swing(self) -> float:
        return abs(self.high_speedup - self.low_speedup)


def tornado(
    cluster: ClusterSpec = COOLEY,
    stack: StackGeometry = PAPER_STACK,
    spread: float = 0.3,
) -> list[TornadoBar]:
    """+-``spread`` perturbation of every fitted constant, ranked by the
    swing it induces in the 216-rank headline speedup."""
    bars = []
    for parameter in FITTED_PARAMETERS:
        base = getattr(cluster, parameter)
        low = cluster.with_(**{parameter: base * (1 - spread)})
        high = cluster.with_(**{parameter: base * (1 + spread)})
        bars.append(
            TornadoBar(
                parameter=parameter,
                low_speedup=headline_speedup(low, stack=stack),
                high_speedup=headline_speedup(high, stack=stack),
            )
        )
    bars.sort(key=lambda bar: bar.swing, reverse=True)
    return bars
