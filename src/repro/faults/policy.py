"""Recovery configuration: how hard the runtime fights a faulty fabric.

A :class:`ReliabilityPolicy` is consumed at three layers:

* **transport** (``repro.mpisim.comm``) — retry budget and exponential
  backoff for injected transient send/recv failures, the corruption
  handling mode for checksum mismatches, and the per-operation receive
  deadline that turns a silently dropped message into a prompt, typed
  :class:`~repro.mpisim.errors.DeadlineError` instead of a ride on the
  global deadlock watchdog;
* **engine** (``repro.core.engine``) — retry budget and backoff for
  exchange rounds that fail at entry (see
  ``ExchangeEngine.execute(reliability=...)``);
* **pipeline** (``repro.intransit``) — the frame receive deadline behind
  the consumer's frame-drop policy.

The policy is deliberately a plain frozen dataclass with no behaviour
beyond :meth:`backoff_s`, so it can thread through ``Redistributor`` and
``PipelineConfig`` and be embedded in a :func:`repro.faults.fault_plan`
installation without import-order constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Corruption handling modes (``ReliabilityPolicy.corruption``).
CORRUPTION_RERETRIEVE = "reretrieve"
CORRUPTION_RAISE = "raise"

_CORRUPTION_MODES = (CORRUPTION_RERETRIEVE, CORRUPTION_RAISE)


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Retry/deadline/corruption configuration for one redistribution stack.

    ``max_retries``
        Attempts *beyond the first* allowed per operation (transport) and
        per round (engine) before :class:`RetriesExhaustedError` is raised.
    ``backoff_base_s`` / ``backoff_factor`` / ``backoff_cap_s``
        Exponential backoff between attempts:
        ``min(cap, base * factor**attempt)`` seconds.
    ``corruption``
        ``"reretrieve"`` heals a checksum mismatch from the sender's
        retained pristine payload (one simulated retransmission);
        ``"raise"`` surfaces :class:`CorruptionError` instead.
    ``op_deadline_s``
        Per-operation receive deadline while a fault plan is installed;
        ``None`` falls back to the fabric's global deadlock timeout.
    ``frame_deadline_s``
        How long an in-transit consumer waits for one frame's slabs before
        applying its frame-drop policy.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.001
    backoff_factor: float = 2.0
    backoff_cap_s: float = 0.05
    corruption: str = CORRUPTION_RERETRIEVE
    op_deadline_s: Optional[float] = None
    frame_deadline_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.corruption not in _CORRUPTION_MODES:
            raise ValueError(
                f"unknown corruption mode {self.corruption!r} "
                f"(use one of {_CORRUPTION_MODES})"
            )
        if self.op_deadline_s is not None and self.op_deadline_s <= 0:
            raise ValueError("op_deadline_s must be positive or None")
        if self.frame_deadline_s <= 0:
            raise ValueError("frame_deadline_s must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
