"""Edge chaos: seeded misbehaving clients against a live serving edge.

The serving stack (:mod:`repro.serve`) claims it survives hostile
traffic: slow-loris header drips, garbage bytes, WebSocket protocol
violations, half-closed sockets, connect floods, and consumers that never
read.  This harness makes that claim falsifiable the same way
:mod:`repro.faults.chaos` does for the transport fabric — each run boots a
real hub + edge with tight limits, publishes real frames throughout,
storms it with a seeded mix of misbehaving clients, and demands one of
exactly three healthy outcomes:

* **OK** — the edge absorbed everything without engaging any policy;
* **DEGRADED** (by policy) — the overload ladder engaged, viewers were
  shed, or write-stall guards fired; all deliberate, all typed;
* **TYPED_ERROR** — misbehavior was refused with typed responses
  (400/408/429/503, WS close codes) and nothing else gave.

A run **FAILS** when the edge stops answering health checks afterwards,
viewers never return to zero (stuck handlers), or event-loop tasks leak.
``python -m repro chaos --edge`` drives this from the command line and CI.

Like :mod:`repro.faults.chaos`, this module imports the whole runtime and
is not re-exported from :mod:`repro.faults`.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import threading
import time
from typing import Callable, Optional

from ..serve.edge import EdgeLimits, StreamEdge
from ..serve.hub import FrameHub
from ..serve.overload import OverloadController, SloPolicy
from ..serve.producer import SyntheticSource
from .chaos import DEGRADED, FAILED, OK, TYPED_ERROR, ChaosReport, ChaosRun

__all__ = ["BEHAVIORS", "run_edge_chaos"]

#: Misbehaving-client behaviors a seeded plan draws from.
BEHAVIORS = (
    "slow_loris",
    "garbage",
    "ws_violation",
    "half_closed",
    "connect_flood",
    "never_reading",
)

#: Typed-refusal statuses the edge is allowed (expected) to answer with.
_TYPED_STATUSES = frozenset({400, 404, 405, 408, 429, 503})

#: Counters whose presence marks a run as degraded *by policy*.
_DEGRADE_COUNTERS = (
    "serve.viewers_shed",
    "serve.viewer_stalls",
    "serve.mip_forced",
    "serve.frames_ratelimited",
)

#: Counters whose presence marks typed refusals.
_TYPED_COUNTERS = (
    "serve.admission_rejected",
    "serve.requests_rejected",
    "serve.conns_rejected",
    "serve.ws_protocol_errors",
)


class _EdgeChaosFailure(AssertionError):
    """The edge did not survive the storm in a healthy state."""


# -- low-level client plumbing ------------------------------------------------


def _connect(port: int, timeout: float = 3.0, rcvbuf: Optional[int] = None):
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    if rcvbuf is not None:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    sock.settimeout(timeout)
    return sock


def _recv_all(sock, limit: int = 1 << 20) -> bytes:
    data = b""
    try:
        while len(data) < limit:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    except (socket.timeout, OSError):
        pass
    return data


def _status_of(response: bytes) -> Optional[int]:
    try:
        return int(response.split(b" ", 2)[1])
    except (IndexError, ValueError):
        return None


def _http_get(port: int, path: str, timeout: float = 3.0) -> bytes:
    with _connect(port, timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: chaos\r\n\r\n".encode())
        return _recv_all(sock)


# -- the misbehaving clients --------------------------------------------------
#
# Each behavior returns a result dict: what it did, what status (if any)
# it got back, and whether the edge's reaction was acceptable.  None of
# them may hang: every socket carries a timeout.


def _do_slow_loris(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """Drip header bytes slower than the request deadline allows."""
    payload = b"GET / HTTP/1.1\r\nX-Drip: " + bytes(
        rng.choice(b"abcdefgh") for _ in range(256)
    )
    deadline = time.monotonic() + limits.request_deadline_s + 2.0
    with _connect(port) as sock:
        try:
            for i in range(len(payload)):
                if time.monotonic() > deadline:
                    break
                sock.sendall(payload[i : i + 1])
                time.sleep(limits.request_deadline_s / 8)
        except OSError:
            pass  # server already hung up — that is the point
        response = _recv_all(sock, limit=4096)
    return {"behavior": "slow_loris", "status": _status_of(response)}


def _do_garbage(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """A burst of seeded garbage bytes terminated with CRLF."""
    junk = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 512)))
    with _connect(port) as sock:
        try:
            sock.sendall(junk.replace(b"\n", b"x") + b"\r\n\r\n")
        except OSError:
            pass
        response = _recv_all(sock, limit=4096)
    return {"behavior": "garbage", "status": _status_of(response)}


def _do_ws_violation(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """A clean WS upgrade followed by a protocol-violating frame."""
    with _connect(port) as sock:
        sock.sendall(
            b"GET /ws?mip=1 HTTP/1.1\r\nHost: chaos\r\n"
            b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            b"Sec-WebSocket-Key: Y2hhb3NjaGFvc2NoYW9zY2g=\r\n"
            b"Sec-WebSocket-Version: 13\r\n\r\n"
        )
        head = sock.recv(4096)
        if not head.startswith(b"HTTP/1.1 101"):
            # Admission refused the upgrade — a typed response, also fine.
            return {"behavior": "ws_violation", "status": _status_of(head)}
        kind = rng.choice(("rsv", "opcode", "oversized", "fragmented"))
        if kind == "rsv":
            frame = bytes([0xC2, 0x81, 1, 2, 3, 4]) + b"x"  # RSV bits set
        elif kind == "opcode":
            frame = bytes([0x83, 0x80, 0, 0, 0, 0])  # reserved opcode 0x3
        elif kind == "fragmented":
            frame = bytes([0x02, 0x81, 0, 0, 0, 0]) + b"x"  # FIN=0
        else:  # declared length far past the payload cap
            frame = bytes([0x82, 0xFF]) + struct.pack(
                ">Q", limits.max_ws_payload + 1
            ) + bytes(4)
        try:
            sock.sendall(frame)
        except OSError:
            pass
        close = _recv_all(sock, limit=1 << 16)
        # The tail of whatever arrives should contain a server close frame
        # (0x88); frames may precede it.
        return {
            "behavior": "ws_violation",
            "status": 101,
            "closed": b"\x88" in close[-4096:] or close == b"",
        }


def _do_half_closed(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """Open a stream, read a little, then vanish mid-frame."""
    path = rng.choice(("/mjpeg", "/mjpeg?mip=1", "/frame"))
    with _connect(port) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: chaos\r\n\r\n".encode())
        try:
            sock.recv(rng.randrange(1, 2048))
        except (socket.timeout, OSError):
            pass
        # Abortive close: RST instead of FIN, the rudest exit available.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    return {"behavior": "half_closed", "status": None}


def _do_connect_flood(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """Burst past the connection cap; expect typed 503s beyond it."""
    n = limits.max_conns + rng.randrange(2, 6)
    socks, statuses = [], []
    try:
        for _ in range(n):
            try:
                socks.append(_connect(port, timeout=1.0))
            except OSError:
                statuses.append(None)
        for sock in socks:
            try:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: f\r\n\r\n")
            except OSError:
                pass
        for sock in socks:
            statuses.append(_status_of(_recv_all(sock, limit=4096)))
    finally:
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
    return {
        "behavior": "connect_flood",
        "status": 503 if 503 in statuses else statuses[0] if statuses else None,
        "rejected": statuses.count(503),
        "answered": statuses.count(200),
    }


def _do_never_reading(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """Subscribe to the MJPEG stream and never read a byte: the write
    stall guard must shed this consumer instead of pinning a handler."""
    sock = _connect(port, timeout=8.0, rcvbuf=2048)
    try:
        sock.sendall(b"GET /mjpeg HTTP/1.1\r\nHost: chaos\r\n\r\n")
        # Do not read.  Wait past the write-stall timeout; the server must
        # disconnect us (recv on the half-dead socket returns quickly).
        time.sleep(limits.write_stall_timeout_s + 1.0)
    finally:
        sock.close()
    return {"behavior": "never_reading", "status": None}


def _do_well_behaved(port: int, rng: random.Random, limits: EdgeLimits) -> dict:
    """A cooperative viewer mixed into every storm: the edge must keep
    serving real frames to clients that follow the rules.  Cooperation
    includes honoring typed 429/503 + ``Retry-After`` refusals mid-flood —
    the client retries and must be served once the burst clears."""
    query = rng.choice(("", "?mip=1", "?w=24&h=16&parts=2"))
    status, retries = None, 0
    for attempt in range(6):
        response = _http_get(port, f"/frame{query}", timeout=6.0)
        status = _status_of(response)
        if status == 200 and b"\xff\xd8" in response:  # JPEG SOI marker
            return {
                "behavior": "well_behaved", "status": status, "ok": True,
                "retries": retries,
            }
        if status not in (429, 503):
            break
        retries += 1
        time.sleep(0.3)
    return {"behavior": "well_behaved", "status": status, "ok": False,
            "retries": retries}


_CLIENTS: dict[str, Callable] = {
    "slow_loris": _do_slow_loris,
    "garbage": _do_garbage,
    "ws_violation": _do_ws_violation,
    "half_closed": _do_half_closed,
    "connect_flood": _do_connect_flood,
    "never_reading": _do_never_reading,
    "well_behaved": _do_well_behaved,
}


# -- one storm ----------------------------------------------------------------


def _chaos_limits() -> EdgeLimits:
    """Tight limits so every guard trips inside a ~2 s storm."""
    return EdgeLimits(
        max_header_lines=32,
        max_header_bytes=4096,
        request_deadline_s=0.5,
        max_conns=12,
        max_ws_payload=1 << 16,
        retry_after_s=1.0,
        write_stall_timeout_s=0.5,
        write_buffer_bytes=8192,
        drain_timeout_s=3.0,
        sock_sndbuf=4096,
    )


def _storm(
    index: int, plan_seed: int, clients: int, log=None
) -> tuple[str, str, int, dict]:
    """One boot-storm-verify cycle: (outcome, error, injected, stats)."""
    rng = random.Random(plan_seed)
    limits = _chaos_limits()
    controller = OverloadController(
        SloPolicy(breach_steps=2, clear_steps=3, stall_timeout_s=10.0)
    )
    source = SyntheticSource(48, 32, m=2)
    hub = FrameHub(
        48, 32, m=2,
        quality=70,
        max_viewers=8,
        max_viewers_per_layout=4,
        overload=controller,
        retry_after_s=1.0,
    )
    edge = StreamEdge(hub, frame_timeout_s=5.0, limits=limits)
    edge.serve_in_thread()

    stop = threading.Event()

    def produce() -> None:
        frame = 0
        while not stop.is_set():
            hub.publish(frame, source.slabs(frame))
            frame += 1
            time.sleep(0.01)

    producer = threading.Thread(target=produce, name="chaos-producer", daemon=True)
    producer.start()

    outcome, error = OK, ""
    results: list[dict] = []
    try:
        # Let the hub publish a few frames, then measure the task baseline.
        time.sleep(0.1)
        baseline_tasks = edge.task_count()

        plan = [rng.choice(BEHAVIORS) for _ in range(clients)] + ["well_behaved"]
        rng.shuffle(plan)

        def run_client(name: str, client_rng: random.Random) -> None:
            try:
                results.append(_CLIENTS[name](edge.port, client_rng, limits))
            except Exception as exc:  # noqa: BLE001 - recorded, judged below
                results.append(
                    {"behavior": name, "status": None,
                     "client_error": f"{type(exc).__name__}: {exc}"}
                )

        threads = [
            threading.Thread(
                target=run_client,
                # str seeds derive deterministically (no hash randomization)
                args=(name, random.Random(f"{plan_seed}:{i}:{name}")),
                daemon=True,
            )
            for i, name in enumerate(plan)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=limits.write_stall_timeout_s + 10.0)
        if any(thread.is_alive() for thread in threads):
            raise _EdgeChaosFailure("a chaos client hung past its deadline")

        # -- post-storm health -------------------------------------------
        health = _http_get(edge.port, "/healthz")
        if _status_of(health) != 200:
            raise _EdgeChaosFailure(
                f"/healthz did not answer 200 after the storm: {health[:80]!r}"
            )
        stats_raw = _http_get(edge.port, "/stats")
        body = stats_raw.split(b"\r\n\r\n", 1)[-1]
        stats_json = json.loads(body)

        deadline = time.monotonic() + 5.0
        while hub.viewer_count() > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        if hub.viewer_count() > 0:
            raise _EdgeChaosFailure(
                f"{hub.viewer_count()} viewers still registered after the "
                f"storm — a handler is stuck"
            )
        while edge.task_count() > baseline_tasks and time.monotonic() < deadline:
            time.sleep(0.05)
        leaked = edge.task_count() - baseline_tasks
        if leaked > 0:
            raise _EdgeChaosFailure(
                f"{leaked} event-loop tasks leaked past the storm"
            )

        # A cooperative viewer must have been served a real frame.
        for result in results:
            if result["behavior"] == "well_behaved" and not result.get("ok"):
                raise _EdgeChaosFailure(
                    f"well-behaved viewer was not served: {result}"
                )
        for result in results:
            if "client_error" in result:
                raise _EdgeChaosFailure(
                    f"chaos client {result['behavior']} died untyped: "
                    f"{result['client_error']}"
                )
            status = result.get("status")
            if status is not None and status not in _TYPED_STATUSES | {101, 200}:
                raise _EdgeChaosFailure(
                    f"{result['behavior']} got untyped status {status}"
                )

        counters = hub.metrics.counters
        degraded = controller.level > 0 or any(
            counters.get(name, 0) for name in _DEGRADE_COUNTERS
        ) or controller.shed_total > 0
        typed = any(counters.get(name, 0) for name in _TYPED_COUNTERS) or any(
            r.get("status") in _TYPED_STATUSES for r in results
        )
        if degraded:
            outcome = DEGRADED
        elif typed:
            outcome = TYPED_ERROR
        stats = {
            "ladder_level": controller.level,
            "transitions": len(controller.transitions),
            "shed_total": controller.shed_total,
            "viewers_after": stats_json["viewers"],
            "clients": results,
            "counters": {
                name: counters.get(name, 0)
                for name in _DEGRADE_COUNTERS + _TYPED_COUNTERS
                if counters.get(name, 0)
            },
        }
    except _EdgeChaosFailure as exc:
        outcome, error, stats = FAILED, str(exc), {"clients": results}
    except Exception as exc:  # noqa: BLE001 - bare exceptions fail the run
        outcome, error = FAILED, f"{type(exc).__name__}: {exc}"
        stats = {"clients": results}
    finally:
        stop.set()
        producer.join(timeout=5.0)
        edge.shutdown()
        hub.close()
    if producer.is_alive():
        outcome, error = FAILED, "producer thread failed to stop"
    return outcome, error, len(results), stats


def run_edge_chaos(
    seed: int = 0, runs: int = 20, clients: int = 5, log=None
) -> ChaosReport:
    """Sweep ``runs`` seeded client storms against live serving edges.

    Run ``i`` uses plan seed ``seed + i`` to draw ``clients`` misbehaving
    clients from :data:`BEHAVIORS` (plus one cooperative viewer that must
    still be served).  Outcomes reuse the transport-chaos vocabulary:
    ``ok``, ``degraded`` (by policy), ``typed-error``, ``failed`` — only
    ``failed`` gates CI.
    """
    report = ChaosReport()
    for index in range(runs):
        plan_seed = seed + index
        started = time.perf_counter()
        outcome, error, injected, stats = _storm(index, plan_seed, clients, log)
        run = ChaosRun(
            index=index,
            seed=plan_seed,
            workload="edge-storm",
            backend="serve",
            transport="tcp",
            outcome=outcome,
            executor="asyncio",
            error=error,
            injected=injected,
            duration_s=time.perf_counter() - started,
            stats=stats,
        )
        report.runs.append(run)
        if log is not None:
            mark = "PASS" if run.passed else "FAIL"
            behaviors = ",".join(
                sorted({c["behavior"] for c in stats.get("clients", [])})
            )
            log(
                f"[{mark}] run {index:3d} seed {plan_seed} edge-storm "
                f"{outcome:<11} clients={injected} {run.duration_s:.2f}s "
                f"[{behaviors}]" + (f"  {error}" if error else "")
            )
    return report
