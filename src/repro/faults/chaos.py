"""Chaos harness: randomized fault schedules against the full stack.

Each run draws a seeded :class:`~repro.faults.plan.FaultPlan`, installs it,
and drives a real workload — a slab-to-tile redistribution cycled across
every engine × transport combination, with an in-transit pipeline run mixed
in — then demands one of exactly two outcomes:

* **bitwise-correct output** (the self-healing machinery absorbed every
  fault; degraded pipeline frames are counted, not failed), or
* **a clean, typed error** (an :class:`~repro.mpisim.errors.MpiSimError`
  subclass naming what gave up — crash, exhausted retries, unhealable
  corruption, or a per-op deadline on a dropped message).

A hang (:class:`~repro.mpisim.executor.SpmdHangError`), a bare untyped
exception, or silently wrong output fails the run.  ``python -m repro
chaos`` drives this from the command line and CI.

This module imports the whole runtime and is therefore *not* re-exported
from :mod:`repro.faults` (the transport imports that package at module
level).
"""

from __future__ import annotations

import random
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from functools import partial

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..intransit.pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..lbm.decompose import slab_box
from ..lbm.simulation import LbmConfig
from ..mpisim.comm import TRANSPORT_PACKED, TRANSPORT_SHM, TRANSPORT_ZEROCOPY, Communicator
from ..mpisim.errors import MpiSimError, RankCrashError
from ..mpisim.executor import RankFailure, SpmdHangError, run_spmd
from ..resilience import ResilientRedistributor
from ..utils.membudget import MEMORY_BUDGET, budget_scope
from ..volren.decompose import grid_boxes, grid_shape
from .injector import FAULTS, fault_plan
from .plan import FaultPlan
from .policy import ReliabilityPolicy

__all__ = ["ChaosReport", "ChaosRun", "run_chaos"]

BACKENDS = ("alltoallw", "p2p", "auto")
TRANSPORTS = (TRANSPORT_PACKED, TRANSPORT_ZEROCOPY)

#: Memory-chaos backends: the strict engines (which must surface a typed
#: ``MemoryBudgetError`` when a round cannot fit) plus the two that keep
#: going under pressure (``bounded`` lowers rounds, ``auto`` picks per
#: round on the time/peak Pareto frontier).
MEMORY_BACKENDS = ("alltoallw", "p2p", "auto", "bounded")

#: Memory-chaos combos: thread executor + staged transport only.  The
#: budget ledger lives in this process, and only staged payloads consume
#: budgeted staging memory (zero-copy rounds stage nothing).
MEMORY_COMBOS = (("thread", TRANSPORT_PACKED),)

#: Memory-chaos field: big enough that lanes exceed the bounded engine's
#: 64 KiB minimum piece size, so tight budgets actually force sub-round
#: lowering rather than only ledger checks.
MEMORY_NX, MEMORY_NY = 256, 128

#: Budgets sweep from the full measured unbounded peak down to this
#: fraction of it as the run index advances — the "shrinking budget" axis.
MEMORY_MIN_FRACTION = 0.15

#: Probe limit (effectively unbounded) used to *measure* each workload's
#: staging peak before the sweep applies pressure.
PROBE_BUDGET_MB = 1024

#: executor × transport combinations the plain-exchange sweep cycles
#: through.  The process executor runs the shm transport (its only bulk
#: transport); the crash and pipeline sweeps stay on the thread executor —
#: their recovery machinery (buddy checkpoints on ``fabric.shared``) needs
#: one address space.
COMBOS = (
    ("thread", TRANSPORT_PACKED),
    ("thread", TRANSPORT_ZEROCOPY),
    ("process", TRANSPORT_SHM),
)

#: Outcome labels.
OK = "ok"  # bitwise-correct output, all faults absorbed
RECOVERED = "recovered"  # a rank crashed; survivors shrank and finished bitwise-correct
DEGRADED = "degraded"  # completed by dropping/staling frames or stale restores
TYPED_ERROR = "typed-error"  # a clean MpiSimError subclass surfaced
FAILED = "failed"  # hang, bare exception, or silent corruption

#: Every ``PIPELINE_EVERY``-th run drives the in-transit pipeline instead
#: of the plain redistribution workload.
PIPELINE_EVERY = 5

#: Watchdog budget for one chaos run: short enough that a hang fails fast,
#: long enough that injected delays and backoff never trip it spuriously.
DEADLOCK_TIMEOUT_S = 8.0

#: Default recovery policy for chaos runs: a tight per-op deadline so a
#: dropped message surfaces in under a second, and short backoffs so a
#: 50-run sweep stays fast.
CHAOS_POLICY = ReliabilityPolicy(
    max_retries=3,
    backoff_base_s=0.0005,
    backoff_cap_s=0.005,
    op_deadline_s=1.0,
    frame_deadline_s=0.5,
)


class ChaosVerificationError(AssertionError):
    """The exchange 'succeeded' but produced wrong bytes — the one outcome
    the fault fabric must never allow."""


@dataclass
class ChaosRun:
    """Outcome of one randomized schedule."""

    index: int
    seed: int
    workload: str  # "redistribute" | "pipeline"
    backend: str
    transport: str
    outcome: str  # OK | RECOVERED | DEGRADED | TYPED_ERROR | FAILED
    executor: str = "thread"  # "thread" | "process"
    error: str = ""  # exception type (and message head) when not OK
    injected: int = 0  # faults the plan actually fired
    duration_s: float = 0.0
    budget_bytes: int = 0  # staging budget applied (0 = unbudgeted run)
    peak_bytes: int = 0  # measured staging peak under that budget
    stats: dict = field(default_factory=dict)  # fault-layer counter snapshot

    @property
    def passed(self) -> bool:
        return self.outcome != FAILED

    def to_dict(self) -> dict:
        out = asdict(self)
        out["passed"] = self.passed
        return out


@dataclass
class ChaosReport:
    """Aggregate over a chaos sweep; ``passed`` is the CI gate."""

    runs: list[ChaosRun] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.runs) and all(run.passed for run in self.runs)

    def count(self, outcome: str) -> int:
        return sum(1 for run in self.runs if run.outcome == outcome)

    def summary(self) -> str:
        lines = [
            f"chaos: {len(self.runs)} runs — {self.count(OK)} ok, "
            f"{self.count(RECOVERED)} recovered, {self.count(DEGRADED)} "
            f"degraded, {self.count(TYPED_ERROR)} typed errors, "
            f"{self.count(FAILED)} failed"
        ]
        for run in self.runs:
            if not run.passed:
                lines.append(
                    f"  FAILED run {run.index} (seed {run.seed}, {run.workload}, "
                    f"{run.backend}/{run.transport}): {run.error}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable sweep summary (``python -m repro chaos --json``)."""
        return {
            "passed": self.passed,
            "counts": {
                outcome: self.count(outcome)
                for outcome in (OK, RECOVERED, DEGRADED, TYPED_ERROR, FAILED)
            },
            "runs": [run.to_dict() for run in self.runs],
        }


# -- workloads ----------------------------------------------------------------


def _reference(nx: int, ny: int) -> np.ndarray:
    """Global field with a unique value per cell (bitwise comparisons)."""
    return np.arange(nx * ny, dtype=np.float32).reshape(ny, nx)


def _extract(reference: np.ndarray, box: Box) -> np.ndarray:
    ox, oy = box.offset
    h, w = box.np_shape()
    return reference[oy : oy + h, ox : ox + w]


def _exchange_worker(
    comm: Communicator, nx: int, ny: int, backend: str, transport: str,
    generations: int,
) -> bool:
    """Slab-to-tile redistribution, verified bitwise every generation."""
    rank = comm.rank
    own_box = slab_box(nx, ny, comm.size, rank)
    need_box = grid_boxes((nx, ny), grid_shape(comm.size, (nx, ny)))[rank]
    red = Redistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport=transport
    )
    red.setup(own=[own_box], need=need_box)
    reference = _reference(nx, ny)
    base_own = np.ascontiguousarray(_extract(reference, own_box))
    base_expect = _extract(reference, need_box)
    for generation in range(1, generations + 1):
        own = base_own * np.float32(generation)
        out = red.gather_need([own], fill=-1.0)
        expect = base_expect * np.float32(generation)
        if not np.array_equal(out, expect):
            raise ChaosVerificationError(
                f"rank {rank} generation {generation}: exchange output does "
                f"not match the reference (silent corruption)"
            )
    return True


def _resilient_exchange_worker(
    comm: Communicator, nx: int, ny: int, backend: str, transport: str,
    generations: int,
) -> tuple[int, bool]:
    """Crash-surviving slab-to-tile redistribution.

    Regenerates data for *every* current own box each generation (adopted
    boxes included), so a recovered run is verified bitwise against the
    no-fault reference.  Regions the recovery had to restore from an older
    checkpoint epoch (``stale_boxes``) are masked out of the comparison
    and reported as degradation instead.  Returns ``(recoveries,
    degraded)``.
    """
    rank = comm.rank
    own_box = slab_box(nx, ny, comm.size, rank)
    need_box = grid_boxes((nx, ny), grid_shape(comm.size, (nx, ny)))[rank]
    red = ResilientRedistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport=transport
    )
    red.setup([own_box], need_box)
    reference = _reference(nx, ny)
    expect_base = _extract(reference, need_box)
    degraded = False
    for generation in range(1, generations + 1):
        scale = np.float32(generation)
        buffers = [
            np.ascontiguousarray(_extract(reference, box)) * scale
            for box in red.own_boxes
        ]
        out = red.gather_need(buffers, fill=-1.0)
        expect = expect_base * scale
        mask = np.ones(expect.shape, dtype=bool)
        if red.stale_boxes:
            degraded = True
            for box in red.stale_boxes:
                overlap = box.intersect(need_box)
                if overlap is None:
                    continue
                r0, c0 = overlap.np_starts_within(need_box)
                h, w = overlap.np_shape()
                mask[r0 : r0 + h, c0 : c0 + w] = False
        if not np.array_equal(out[mask], expect[mask]):
            raise ChaosVerificationError(
                f"rank {rank} generation {generation}: recovered exchange "
                f"output does not match the reference (silent corruption)"
            )
    return red.recoveries, degraded


#: Resize-chaos geometry: exchange epochs per run and how far above
#: ``nprocs`` the seeded schedule may grow the world (spawn headroom).
RESIZE_GENERATIONS = 6
RESIZE_HEADROOM = 2

#: Resize sweeps stay on the thread executor — the schedule mixes grows
#: (rank spawn) and shrinks, and the point is the resize protocol under
#: transient faults, not the transport matrix.
RESIZE_COMBOS = (
    ("thread", TRANSPORT_PACKED),
    ("thread", TRANSPORT_ZEROCOPY),
)


def _chaos_slab(nx: int, ny: int, rank: int, n: int) -> Box:
    """``layout(rank, n)`` callable for resize: row slabs of the field."""
    return slab_box(nx, ny, n, rank)


def _declare_slab_to_tile(rr: ResilientRedistributor, nx: int, ny: int) -> None:
    own = slab_box(nx, ny, rr.comm.size, rr.comm.rank)
    need = grid_boxes((nx, ny), grid_shape(rr.comm.size, (nx, ny)))[rr.comm.rank]
    rr.setup([own], need)


def _resize_epochs(
    rr: ResilientRedistributor, nx: int, ny: int, generations: int,
    schedule: tuple,
) -> tuple[str, int]:
    """Shared epoch loop for resize chaos: stayers continue it, spawned
    joiners enter it (at the members' epoch), leavers return out of it.

    Every generation's slab-to-tile exchange is verified bitwise; every
    scheduled resize additionally verifies the migrated slab bitwise on
    every member — a resize that lands wrong bytes is silent corruption
    and fails the run.
    """
    reference = _reference(nx, ny)
    sched = dict(schedule)
    applied = 0
    while rr.epoch < generations:
        scale = np.float32(rr.epoch + 1)
        need_box = grid_boxes(
            (nx, ny), grid_shape(rr.comm.size, (nx, ny))
        )[rr.comm.rank]
        buffers = [
            np.ascontiguousarray(_extract(reference, box)) * scale
            for box in rr.own_boxes
        ]
        out = rr.gather_need(buffers, fill=-1.0)
        if not np.array_equal(out, _extract(reference, need_box) * scale):
            raise ChaosVerificationError(
                f"rank {rr.comm.rank} generation {int(scale)}: exchange "
                f"output does not match the reference (silent corruption)"
            )
        target = sched.get(rr.epoch)
        if target is not None and target != rr.comm.size:
            buffers = [
                np.ascontiguousarray(_extract(reference, box)) * scale
                for box in rr.own_boxes
            ]
            result = rr.resize(
                target,
                buffers,
                partial(_chaos_slab, nx, ny),
                worker=_resize_join,
                worker_args=(nx, ny, generations, schedule),
            )
            applied += 1
            if not result.member:
                return ("left", applied)
            migrated = result.data.reshape(result.own.np_shape())
            if not np.array_equal(
                migrated, _extract(reference, result.own) * scale
            ):
                raise ChaosVerificationError(
                    f"rank {rr.comm.rank}: resize to {target} migrated "
                    f"wrong bytes (silent corruption)"
                )
            _declare_slab_to_tile(rr, nx, ny)
    return ("done", applied)


def _resize_join(
    rr: ResilientRedistributor, result, nx: int, ny: int, generations: int,
    schedule: tuple,
) -> tuple[str, int]:
    """Spawned-rank entry: verify the adopted slab, then join the loop."""
    reference = _reference(nx, ny)
    migrated = result.data.reshape(result.own.np_shape())
    expect = _extract(reference, result.own) * np.float32(rr.epoch)
    if not np.array_equal(migrated, expect):
        raise ChaosVerificationError(
            f"spawned rank {rr.comm.rank} adopted wrong bytes "
            f"(silent corruption)"
        )
    _declare_slab_to_tile(rr, nx, ny)
    return _resize_epochs(rr, nx, ny, generations, schedule)


def _resize_worker(
    comm: Communicator, nx: int, ny: int, backend: str, transport: str,
    generations: int, schedule: tuple,
) -> tuple[str, int]:
    rr = ResilientRedistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport=transport
    )
    _declare_slab_to_tile(rr, nx, ny)
    return _resize_epochs(rr, nx, ny, generations, schedule)


def _resize_schedule(
    plan_seed: int, nprocs: int, generations: int, max_ranks: int
) -> tuple:
    """Seeded ``(epoch, new_n)`` points; every point changes the size."""
    meta = random.Random(plan_seed * 7919 + 17)
    points = sorted(meta.sample(range(1, generations), k=2))
    current = nprocs
    schedule = []
    for epoch in points:
        target = meta.choice(
            [s for s in range(2, max_ranks + 1) if s != current]
        )
        schedule.append((epoch, target))
        current = target
    return tuple(schedule)


def _resize_pipeline_config(
    backend: str, frame_drop: str, plan_seed: int
) -> PipelineConfig:
    """Elastic (``on_load="resize"``) pipeline run with a seeded schedule."""
    meta = random.Random(plan_seed * 104729 + 3)
    splits = [(2, 2), (3, 1), (2, 1), (4, 1), (3, 2)]
    current = (3, 2)
    schedule = []
    for frame in (1, 3):
        choice = meta.choice([s for s in splits if s != current])
        schedule.append((frame, *choice))
        current = choice
    return PipelineConfig(
        lbm=LbmConfig(nx=32, ny=16),
        m=3,
        n=2,
        steps=20,
        output_every=5,
        backend=backend,
        frame_drop=frame_drop,
        frame_deadline_s=0.5,
        reliability=CHAOS_POLICY,
        on_load="resize",
        resize_schedule=tuple(schedule),
    )


def _pipeline_worker(comm: Communicator, config: PipelineConfig):
    result = run_pipeline(comm, config)
    # Degraded-mode leak check: abandoned-frame stragglers must be purged,
    # not left to accumulate in the fabric's mailboxes.  The bound allows a
    # straggler per (variable, sim rank) for a final in-flight frame or two
    # (a message can land after the end-of-run sweep); unbounded growth
    # over a long skip/stale run trips this immediately.
    depth = comm.fabric.mailbox_depth(world_rank=comm.world_rank_of(comm.rank))
    bound = 2 * max(1, len(config.variables)) * config.m
    if depth > bound:
        raise ChaosVerificationError(
            f"mailbox leak: rank {comm.rank} still holds {depth} queued "
            f"messages after a {config.frame_drop!r} pipeline run "
            f"(bound {bound}); abandoned frames are not being purged"
        )
    if MEMORY_BUDGET.active:
        # Staging-budget counterpart of the mailbox bound: every frame this
        # rank staged must have been released by delivery or by the
        # abandoned-frame purge, except charges still held by the straggler
        # allowance above (one full-field frame per allowed message).
        world = comm.world_rank_of(comm.rank)
        resident = MEMORY_BUDGET.used_bytes(world)
        frame_bytes = config.lbm.nx * config.lbm.ny * np.dtype(np.float64).itemsize
        if resident > bound * frame_bytes:
            raise ChaosVerificationError(
                f"staging leak: rank {comm.rank} still holds {resident} "
                f"budgeted bytes after a {config.frame_drop!r} pipeline run "
                f"(bound {bound * frame_bytes}); abandoned-frame staging is "
                f"not being released"
            )
    return result


def _pipeline_config(backend: str, frame_drop: str) -> PipelineConfig:
    return PipelineConfig(
        lbm=LbmConfig(nx=32, ny=16),
        m=2,
        n=2,
        steps=10,
        output_every=5,
        backend=backend,
        frame_drop=frame_drop,
        frame_deadline_s=0.5,
        reliability=CHAOS_POLICY,
    )


def _crash_pipeline_config(backend: str, frame_drop: str) -> PipelineConfig:
    # m=3 so a single simulation-rank death still leaves m' >= n.
    return PipelineConfig(
        lbm=LbmConfig(nx=32, ny=16),
        m=3,
        n=2,
        steps=10,
        output_every=5,
        backend=backend,
        frame_drop=frame_drop,
        frame_deadline_s=0.5,
        reliability=CHAOS_POLICY,
        on_rank_loss="shrink",
    )


def _crash_plan(plan_seed: int, nranks: int, ops: int, window: int) -> FaultPlan:
    """A single-crash schedule: one victim, one kill point, nothing else.

    ``window`` caps the kill point so it lands inside the workload's actual
    op count (the exchange performs far fewer transport ops than a full
    pipeline run); a crash point past the end would never fire.
    """
    meta = random.Random(plan_seed)
    return FaultPlan(
        seed=plan_seed,
        nranks=nranks,
        ops=ops,
        crash_rank=meta.randrange(nranks),
        crash_at_op=meta.randrange(3, max(4, min(ops, window))),
    )


# -- the sweep ----------------------------------------------------------------


def _memory_peaks(nprocs: int) -> dict[str, int]:
    """Measure each memory-chaos workload's unbounded staging peak.

    One clean (fault-free) probe run per workload under an effectively
    infinite budget: the ledger tracks without ever binding, and its
    high-water mark is the peak the shrinking sweep budgets against.
    """
    from ..core.plan import compute_global_plan
    from ..core.schedule import global_schedules

    peaks: dict[str, int] = {}
    with budget_scope(limit_mb=PROBE_BUDGET_MB):
        run_spmd(
            nprocs, _exchange_worker, MEMORY_NX, MEMORY_NY,
            "alltoallw", TRANSPORT_PACKED, 3,
        )
        measured = MEMORY_BUDGET.peak_bytes()
    # The strict engines guard on the schedule's *conservative* per-round
    # estimate (sends staged + receives in flight at once), which the
    # timing-dependent measured peak undercuts; budget against the larger
    # of the two so the full-fraction runs admit every backend.
    shape = (MEMORY_NX, MEMORY_NY)
    tiles = grid_boxes(shape, grid_shape(nprocs, shape))
    plan = compute_global_plan(
        [[slab_box(MEMORY_NX, MEMORY_NY, nprocs, r)] for r in range(nprocs)],
        [tiles[r] for r in range(nprocs)],
        element_size=4,
    )
    estimated = max(
        (rnd.max_round_bytes for s in global_schedules(plan) for rnd in s.rounds),
        default=0,
    )
    peaks["redistribute"] = max(measured, estimated)
    config = _pipeline_config("alltoallw", "skip")
    with budget_scope(limit_mb=PROBE_BUDGET_MB):
        run_spmd(config.m + config.n, _pipeline_worker, config)
        # Frame staging is concurrent and timing-dependent; double the
        # probe's high-water mark so the full-fraction runs have headroom.
        peaks["pipeline"] = 2 * MEMORY_BUDGET.peak_bytes()
    return peaks


def _classify_failure(exc: BaseException) -> tuple[str, str]:
    """Map an escaped exception to (outcome, description)."""
    original = exc.original if isinstance(exc, RankFailure) else exc
    head = str(original).splitlines()[0][:160] if str(original) else ""
    label = f"{type(original).__name__}: {head}"
    if isinstance(original, ChaosVerificationError):
        return FAILED, label
    if isinstance(exc, SpmdHangError) or isinstance(original, SpmdHangError):
        return FAILED, label
    if isinstance(original, MpiSimError):
        return TYPED_ERROR, label
    return FAILED, label


def run_chaos(
    seed: int = 0,
    runs: int = 50,
    ops: int = 200,
    nprocs: int = 4,
    log=None,
    crashes: bool = False,
    resizes: bool = False,
    memory: bool = False,
) -> ChaosReport:
    """Sweep ``runs`` randomized fault schedules; see the module docstring.

    Run ``i`` uses plan seed ``seed + i`` and cycles through every
    engine × transport combination; every :data:`PIPELINE_EVERY`-th run
    drives the in-transit pipeline (alternating the ``skip`` and ``stale``
    frame-drop policies) instead of the plain redistribution.

    With ``crashes=True`` every plan is a seeded *single-crash* schedule
    (one victim rank, one kill point, no other faults) and the workloads
    run their crash-surviving variants — :class:`ResilientRedistributor`
    and the shrink-mode pipeline.  A run where the victim actually died
    must end recovered-bitwise-correct (:data:`RECOVERED`), degraded by
    policy (:data:`DEGRADED`), or with a typed error; a hang or silent
    corruption still fails the run.

    With ``resizes=True`` every plan draws only *self-healing* fault
    families (no crashes, no drops) and the workloads exercise the
    voluntary resize path instead: a seeded mid-epoch resize schedule
    (grows that spawn ranks, shrinks that retire them) against
    :meth:`ResilientRedistributor.resize`, plus elastic
    (``on_load="resize"``) pipeline runs.  Every generation — and every
    migrated slab — must be bitwise-correct or surface a typed error.

    With ``memory=True`` every run executes under a staging
    :class:`~repro.utils.membudget.MemoryBudget` that shrinks from each
    workload's measured unbounded peak (a fault-free probe run) down to
    :data:`MEMORY_MIN_FRACTION` of it across the sweep, the plans draw
    self-healing families plus seeded ``alloc`` faults, and the backend
    cycle adds ``bounded``.  Acceptable endings are bitwise-correct output
    (the bounded/auto engines lowered their rounds under the budget),
    degraded-by-policy frames, or a typed ``MemoryBudgetError`` from a
    strict engine — never an OOM kill or a hang.
    """
    if nprocs < 2:
        raise ValueError(f"chaos needs nprocs >= 2, got {nprocs}")
    if sum((crashes, resizes, memory)) > 1:
        raise ValueError("crashes, resizes, and memory modes are mutually exclusive")
    peaks = _memory_peaks(nprocs) if memory else {}
    report = ChaosReport()
    for index in range(runs):
        plan_seed = seed + index
        backend = BACKENDS[index % len(BACKENDS)]
        executor, transport = COMBOS[(index // len(BACKENDS)) % len(COMBOS)]
        if memory:
            backend = MEMORY_BACKENDS[index % len(MEMORY_BACKENDS)]
            executor, transport = MEMORY_COMBOS[
                (index // len(MEMORY_BACKENDS)) % len(MEMORY_COMBOS)
            ]
        if resizes:
            executor, transport = RESIZE_COMBOS[
                (index // len(BACKENDS)) % len(RESIZE_COMBOS)
            ]
        elif crashes or index % PIPELINE_EVERY == PIPELINE_EVERY - 1:
            # Crash recovery and the pipeline need the shared-memory
            # blackboard (buddy checkpoints); keep those on threads.
            if executor == "process":
                executor, transport = "thread", TRANSPORT_PACKED
        is_pipeline = index % PIPELINE_EVERY == PIPELINE_EVERY - 1
        schedule: tuple = ()
        if is_pipeline:
            drop = "skip" if (index // PIPELINE_EVERY) % 2 == 0 else "stale"
            if resizes:
                config = _resize_pipeline_config(backend, drop, plan_seed)
            else:
                config = (
                    _crash_pipeline_config if crashes else _pipeline_config
                )(backend, drop)
            world_size = config.m + config.n
        else:
            config = None
            world_size = nprocs
        # The pipeline tolerates frame loss by policy; crashes there are
        # still allowed (they surface typed or recovered), but drops are
        # the interesting stimulus.  The plain exchange gets the full
        # fault menu; crash mode narrows it to one scripted death, and
        # resize mode narrows it to the self-healing families so bitwise
        # completion is the expected outcome.
        if crashes:
            window = 90 if is_pipeline else 20
            plan = _crash_plan(plan_seed, world_size, ops, window)
        elif resizes:
            plan = FaultPlan.random(
                plan_seed, nprocs, ops=ops,
                allow_crash=False, allow_drop=False,
            )
        elif memory:
            plan = FaultPlan.random(
                plan_seed, world_size, ops=ops,
                allow_crash=False, allow_drop=False, allow_alloc=True,
            )
        else:
            plan = FaultPlan.random(plan_seed, nprocs, ops=ops)
        budget_bytes = 0
        if memory:
            # The shrinking axis: full measured peak on run 0 down to
            # MEMORY_MIN_FRACTION of it on the last run.
            frac = 1.0 - (1.0 - MEMORY_MIN_FRACTION) * (index / max(1, runs - 1))
            workload_peak = peaks["pipeline" if is_pipeline else "redistribute"]
            budget_bytes = max(4096, int(workload_peak * frac))
        nx, ny = (MEMORY_NX, MEMORY_NY) if memory else (16, 8)
        outcome, error, injected = OK, "", 0
        run_peak = 0
        stats: dict = {}
        started = time.perf_counter()
        try:
            with fault_plan(plan, CHAOS_POLICY), (
                budget_scope(limit_bytes=budget_bytes)
                if budget_bytes
                else nullcontext()
            ):
                try:
                    if is_pipeline:
                        results = run_spmd(
                            world_size,
                            _pipeline_worker,
                            config,
                            resilient=crashes,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                        )
                        outcome = _classify_pipeline(results)
                    elif resizes:
                        schedule = _resize_schedule(
                            plan_seed, nprocs, RESIZE_GENERATIONS,
                            nprocs + RESIZE_HEADROOM,
                        )
                        results = run_spmd(
                            nprocs,
                            _resize_worker,
                            16,
                            8,
                            backend,
                            transport,
                            RESIZE_GENERATIONS,
                            schedule,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                            spawn_slots=nprocs + RESIZE_HEADROOM,
                        )
                        outcome = _classify_resize(results, schedule)
                    elif crashes:
                        results = run_spmd(
                            nprocs,
                            _resilient_exchange_worker,
                            16,
                            8,
                            backend,
                            transport,
                            3,
                            resilient=True,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                        )
                        outcome = _classify_exchange(results)
                    else:
                        run_spmd(
                            nprocs,
                            _exchange_worker,
                            nx,
                            ny,
                            backend,
                            transport,
                            3,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                            executor=executor,
                        )
                finally:
                    injected = FAULTS.stats.total_injected()
                    stats = FAULTS.stats.snapshot()
                    if budget_bytes:
                        run_peak = MEMORY_BUDGET.peak_bytes()
        except (RankFailure, SpmdHangError, MpiSimError) as exc:
            outcome, error = _classify_failure(exc)
        except Exception as exc:  # noqa: BLE001 - bare exceptions fail the run
            outcome, error = FAILED, f"{type(exc).__name__}: {exc}"
        if is_pipeline:
            workload = "pipeline-resize" if resizes else "pipeline"
        else:
            workload = "resize" if resizes else "redistribute"
        run = ChaosRun(
            index=index,
            seed=plan_seed,
            workload=workload,
            backend=backend,
            transport=transport,
            outcome=outcome,
            executor=executor,
            error=error,
            injected=injected,
            duration_s=time.perf_counter() - started,
            budget_bytes=budget_bytes,
            peak_bytes=run_peak,
            stats=stats,
        )
        report.runs.append(run)
        if log is not None:
            mark = "PASS" if run.passed else "FAIL"
            log(
                f"[{mark}] run {index:3d} seed {plan_seed} "
                f"{run.workload:<12} {backend:<9} {executor:<7} {transport:<8} "
                f"{outcome:<11} inj={injected:<3d} {run.duration_s:.2f}s"
                + (f" bud={budget_bytes} peak={run_peak}" if budget_bytes else "")
                + (f"  {error}" if error else "")
            )
    return report


def _classify_exchange(results: list) -> str:
    """Outcome of a resilient exchange run (no exception escaped)."""
    crashed = any(isinstance(r, RankCrashError) for r in results)
    survivors = [r for r in results if not isinstance(r, RankCrashError)]
    if any(degraded for _, degraded in survivors):
        return DEGRADED
    if crashed or any(recoveries for recoveries, _ in survivors):
        return RECOVERED
    return OK


def _classify_resize(results: list, schedule: tuple) -> str:
    """Outcome of a resize run (no exception escaped).

    Beyond per-rank bitwise checks (raised inside the workers), require
    that the whole schedule was applied: rank 0 stays a member throughout
    (every target is >= 2), so its counter must equal the schedule length.
    """
    outcomes = [r for r in results if isinstance(r, tuple) and len(r) == 2]
    if not outcomes:
        raise ChaosVerificationError("resize run returned no rank outcomes")
    applied = max(count for _, count in outcomes)
    if applied != len(schedule):
        raise ChaosVerificationError(
            f"resize schedule only partially applied: {applied} of "
            f"{len(schedule)} resizes"
        )
    return OK


def _classify_pipeline(results: list) -> str:
    """Outcome of a pipeline run (no exception escaped)."""
    crashed = any(isinstance(r, RankCrashError) for r in results)
    root = next(
        r
        for r in results
        if isinstance(r, PipelineResult) and r.role == "analysis_root"
    )
    if root.frames_dropped or root.frames_stale:
        return DEGRADED
    if crashed or root.recoveries:
        return RECOVERED
    return OK
