"""Chaos harness: randomized fault schedules against the full stack.

Each run draws a seeded :class:`~repro.faults.plan.FaultPlan`, installs it,
and drives a real workload — a slab-to-tile redistribution cycled across
every engine × transport combination, with an in-transit pipeline run mixed
in — then demands one of exactly two outcomes:

* **bitwise-correct output** (the self-healing machinery absorbed every
  fault; degraded pipeline frames are counted, not failed), or
* **a clean, typed error** (an :class:`~repro.mpisim.errors.MpiSimError`
  subclass naming what gave up — crash, exhausted retries, unhealable
  corruption, or a per-op deadline on a dropped message).

A hang (:class:`~repro.mpisim.executor.SpmdHangError`), a bare untyped
exception, or silently wrong output fails the run.  ``python -m repro
chaos`` drives this from the command line and CI.

This module imports the whole runtime and is therefore *not* re-exported
from :mod:`repro.faults` (the transport imports that package at module
level).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..intransit.pipeline import PipelineConfig, run_pipeline
from ..lbm.decompose import slab_box
from ..lbm.simulation import LbmConfig
from ..mpisim.comm import TRANSPORT_PACKED, TRANSPORT_ZEROCOPY, Communicator
from ..mpisim.errors import MpiSimError
from ..mpisim.executor import RankFailure, SpmdHangError, run_spmd
from ..volren.decompose import grid_boxes, grid_shape
from .injector import FAULTS, fault_plan
from .plan import FaultPlan
from .policy import ReliabilityPolicy

__all__ = ["ChaosReport", "ChaosRun", "run_chaos"]

BACKENDS = ("alltoallw", "p2p", "auto")
TRANSPORTS = (TRANSPORT_PACKED, TRANSPORT_ZEROCOPY)

#: Outcome labels.
OK = "ok"  # bitwise-correct output, all faults absorbed
DEGRADED = "degraded"  # pipeline completed by dropping/staling frames
TYPED_ERROR = "typed-error"  # a clean MpiSimError subclass surfaced
FAILED = "failed"  # hang, bare exception, or silent corruption

#: Every ``PIPELINE_EVERY``-th run drives the in-transit pipeline instead
#: of the plain redistribution workload.
PIPELINE_EVERY = 5

#: Watchdog budget for one chaos run: short enough that a hang fails fast,
#: long enough that injected delays and backoff never trip it spuriously.
DEADLOCK_TIMEOUT_S = 8.0

#: Default recovery policy for chaos runs: a tight per-op deadline so a
#: dropped message surfaces in under a second, and short backoffs so a
#: 50-run sweep stays fast.
CHAOS_POLICY = ReliabilityPolicy(
    max_retries=3,
    backoff_base_s=0.0005,
    backoff_cap_s=0.005,
    op_deadline_s=1.0,
    frame_deadline_s=0.5,
)


class ChaosVerificationError(AssertionError):
    """The exchange 'succeeded' but produced wrong bytes — the one outcome
    the fault fabric must never allow."""


@dataclass
class ChaosRun:
    """Outcome of one randomized schedule."""

    index: int
    seed: int
    workload: str  # "redistribute" | "pipeline"
    backend: str
    transport: str
    outcome: str  # OK | DEGRADED | TYPED_ERROR | FAILED
    error: str = ""  # exception type (and message head) when not OK
    injected: int = 0  # faults the plan actually fired
    duration_s: float = 0.0

    @property
    def passed(self) -> bool:
        return self.outcome != FAILED


@dataclass
class ChaosReport:
    """Aggregate over a chaos sweep; ``passed`` is the CI gate."""

    runs: list[ChaosRun] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.runs) and all(run.passed for run in self.runs)

    def count(self, outcome: str) -> int:
        return sum(1 for run in self.runs if run.outcome == outcome)

    def summary(self) -> str:
        lines = [
            f"chaos: {len(self.runs)} runs — {self.count(OK)} ok, "
            f"{self.count(DEGRADED)} degraded, {self.count(TYPED_ERROR)} "
            f"typed errors, {self.count(FAILED)} failed"
        ]
        for run in self.runs:
            if not run.passed:
                lines.append(
                    f"  FAILED run {run.index} (seed {run.seed}, {run.workload}, "
                    f"{run.backend}/{run.transport}): {run.error}"
                )
        return "\n".join(lines)


# -- workloads ----------------------------------------------------------------


def _reference(nx: int, ny: int) -> np.ndarray:
    """Global field with a unique value per cell (bitwise comparisons)."""
    return np.arange(nx * ny, dtype=np.float32).reshape(ny, nx)


def _extract(reference: np.ndarray, box: Box) -> np.ndarray:
    ox, oy = box.offset
    h, w = box.np_shape()
    return reference[oy : oy + h, ox : ox + w]


def _exchange_worker(
    comm: Communicator, nx: int, ny: int, backend: str, transport: str,
    generations: int,
) -> bool:
    """Slab-to-tile redistribution, verified bitwise every generation."""
    rank = comm.rank
    own_box = slab_box(nx, ny, comm.size, rank)
    need_box = grid_boxes((nx, ny), grid_shape(comm.size, (nx, ny)))[rank]
    red = Redistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport=transport
    )
    red.setup(own=[own_box], need=need_box)
    reference = _reference(nx, ny)
    base_own = np.ascontiguousarray(_extract(reference, own_box))
    base_expect = _extract(reference, need_box)
    for generation in range(1, generations + 1):
        own = base_own * np.float32(generation)
        out = red.gather_need([own], fill=-1.0)
        expect = base_expect * np.float32(generation)
        if not np.array_equal(out, expect):
            raise ChaosVerificationError(
                f"rank {rank} generation {generation}: exchange output does "
                f"not match the reference (silent corruption)"
            )
    return True


def _pipeline_worker(comm: Communicator, config: PipelineConfig):
    return run_pipeline(comm, config)


def _pipeline_config(backend: str, frame_drop: str) -> PipelineConfig:
    return PipelineConfig(
        lbm=LbmConfig(nx=32, ny=16),
        m=2,
        n=2,
        steps=10,
        output_every=5,
        backend=backend,
        frame_drop=frame_drop,
        frame_deadline_s=0.5,
        reliability=CHAOS_POLICY,
    )


# -- the sweep ----------------------------------------------------------------


def _classify_failure(exc: BaseException) -> tuple[str, str]:
    """Map an escaped exception to (outcome, description)."""
    original = exc.original if isinstance(exc, RankFailure) else exc
    head = str(original).splitlines()[0][:160] if str(original) else ""
    label = f"{type(original).__name__}: {head}"
    if isinstance(original, ChaosVerificationError):
        return FAILED, label
    if isinstance(exc, SpmdHangError) or isinstance(original, SpmdHangError):
        return FAILED, label
    if isinstance(original, MpiSimError):
        return TYPED_ERROR, label
    return FAILED, label


def run_chaos(
    seed: int = 0,
    runs: int = 50,
    ops: int = 200,
    nprocs: int = 4,
    log=None,
) -> ChaosReport:
    """Sweep ``runs`` randomized fault schedules; see the module docstring.

    Run ``i`` uses plan seed ``seed + i`` and cycles through every
    engine × transport combination; every :data:`PIPELINE_EVERY`-th run
    drives the in-transit pipeline (alternating the ``skip`` and ``stale``
    frame-drop policies) instead of the plain redistribution.
    """
    if nprocs < 2:
        raise ValueError(f"chaos needs nprocs >= 2, got {nprocs}")
    report = ChaosReport()
    for index in range(runs):
        plan_seed = seed + index
        backend = BACKENDS[index % len(BACKENDS)]
        transport = TRANSPORTS[(index // len(BACKENDS)) % len(TRANSPORTS)]
        is_pipeline = index % PIPELINE_EVERY == PIPELINE_EVERY - 1
        # The pipeline tolerates frame loss by policy; crashes there are
        # still allowed (they surface typed), but drops are the interesting
        # stimulus.  The plain exchange gets the full fault menu.
        plan = FaultPlan.random(plan_seed, nprocs, ops=ops)
        outcome, error, injected = OK, "", 0
        started = time.perf_counter()
        try:
            with fault_plan(plan, CHAOS_POLICY):
                try:
                    if is_pipeline:
                        frame_drop = "skip" if (index // PIPELINE_EVERY) % 2 == 0 else "stale"
                        config = _pipeline_config(backend, frame_drop)
                        results = run_spmd(
                            config.m + config.n,
                            _pipeline_worker,
                            config,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                        )
                        root = next(r for r in results if r.role == "analysis_root")
                        if root.frames_dropped or root.frames_stale:
                            outcome = DEGRADED
                    else:
                        run_spmd(
                            nprocs,
                            _exchange_worker,
                            16,
                            8,
                            backend,
                            transport,
                            3,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                        )
                finally:
                    injected = FAULTS.stats.total_injected()
        except (RankFailure, SpmdHangError, MpiSimError) as exc:
            outcome, error = _classify_failure(exc)
        except Exception as exc:  # noqa: BLE001 - bare exceptions fail the run
            outcome, error = FAILED, f"{type(exc).__name__}: {exc}"
        run = ChaosRun(
            index=index,
            seed=plan_seed,
            workload="pipeline" if is_pipeline else "redistribute",
            backend=backend,
            transport=transport,
            outcome=outcome,
            error=error,
            injected=injected,
            duration_s=time.perf_counter() - started,
        )
        report.runs.append(run)
        if log is not None:
            mark = "PASS" if run.passed else "FAIL"
            log(
                f"[{mark}] run {index:3d} seed {plan_seed} "
                f"{run.workload:<12} {backend:<9} {transport:<8} "
                f"{outcome:<11} inj={injected:<3d} {run.duration_s:.2f}s"
                + (f"  {error}" if error else "")
            )
    return report
