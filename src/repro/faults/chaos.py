"""Chaos harness: randomized fault schedules against the full stack.

Each run draws a seeded :class:`~repro.faults.plan.FaultPlan`, installs it,
and drives a real workload — a slab-to-tile redistribution cycled across
every engine × transport combination, with an in-transit pipeline run mixed
in — then demands one of exactly two outcomes:

* **bitwise-correct output** (the self-healing machinery absorbed every
  fault; degraded pipeline frames are counted, not failed), or
* **a clean, typed error** (an :class:`~repro.mpisim.errors.MpiSimError`
  subclass naming what gave up — crash, exhausted retries, unhealable
  corruption, or a per-op deadline on a dropped message).

A hang (:class:`~repro.mpisim.executor.SpmdHangError`), a bare untyped
exception, or silently wrong output fails the run.  ``python -m repro
chaos`` drives this from the command line and CI.

This module imports the whole runtime and is therefore *not* re-exported
from :mod:`repro.faults` (the transport imports that package at module
level).
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.api import Redistributor
from ..core.box import Box
from ..intransit.pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..lbm.decompose import slab_box
from ..lbm.simulation import LbmConfig
from ..mpisim.comm import TRANSPORT_PACKED, TRANSPORT_SHM, TRANSPORT_ZEROCOPY, Communicator
from ..mpisim.errors import MpiSimError, RankCrashError
from ..mpisim.executor import RankFailure, SpmdHangError, run_spmd
from ..resilience import ResilientRedistributor
from ..volren.decompose import grid_boxes, grid_shape
from .injector import FAULTS, fault_plan
from .plan import FaultPlan
from .policy import ReliabilityPolicy

__all__ = ["ChaosReport", "ChaosRun", "run_chaos"]

BACKENDS = ("alltoallw", "p2p", "auto")
TRANSPORTS = (TRANSPORT_PACKED, TRANSPORT_ZEROCOPY)

#: executor × transport combinations the plain-exchange sweep cycles
#: through.  The process executor runs the shm transport (its only bulk
#: transport); the crash and pipeline sweeps stay on the thread executor —
#: their recovery machinery (buddy checkpoints on ``fabric.shared``) needs
#: one address space.
COMBOS = (
    ("thread", TRANSPORT_PACKED),
    ("thread", TRANSPORT_ZEROCOPY),
    ("process", TRANSPORT_SHM),
)

#: Outcome labels.
OK = "ok"  # bitwise-correct output, all faults absorbed
RECOVERED = "recovered"  # a rank crashed; survivors shrank and finished bitwise-correct
DEGRADED = "degraded"  # completed by dropping/staling frames or stale restores
TYPED_ERROR = "typed-error"  # a clean MpiSimError subclass surfaced
FAILED = "failed"  # hang, bare exception, or silent corruption

#: Every ``PIPELINE_EVERY``-th run drives the in-transit pipeline instead
#: of the plain redistribution workload.
PIPELINE_EVERY = 5

#: Watchdog budget for one chaos run: short enough that a hang fails fast,
#: long enough that injected delays and backoff never trip it spuriously.
DEADLOCK_TIMEOUT_S = 8.0

#: Default recovery policy for chaos runs: a tight per-op deadline so a
#: dropped message surfaces in under a second, and short backoffs so a
#: 50-run sweep stays fast.
CHAOS_POLICY = ReliabilityPolicy(
    max_retries=3,
    backoff_base_s=0.0005,
    backoff_cap_s=0.005,
    op_deadline_s=1.0,
    frame_deadline_s=0.5,
)


class ChaosVerificationError(AssertionError):
    """The exchange 'succeeded' but produced wrong bytes — the one outcome
    the fault fabric must never allow."""


@dataclass
class ChaosRun:
    """Outcome of one randomized schedule."""

    index: int
    seed: int
    workload: str  # "redistribute" | "pipeline"
    backend: str
    transport: str
    outcome: str  # OK | RECOVERED | DEGRADED | TYPED_ERROR | FAILED
    executor: str = "thread"  # "thread" | "process"
    error: str = ""  # exception type (and message head) when not OK
    injected: int = 0  # faults the plan actually fired
    duration_s: float = 0.0
    stats: dict = field(default_factory=dict)  # fault-layer counter snapshot

    @property
    def passed(self) -> bool:
        return self.outcome != FAILED

    def to_dict(self) -> dict:
        out = asdict(self)
        out["passed"] = self.passed
        return out


@dataclass
class ChaosReport:
    """Aggregate over a chaos sweep; ``passed`` is the CI gate."""

    runs: list[ChaosRun] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.runs) and all(run.passed for run in self.runs)

    def count(self, outcome: str) -> int:
        return sum(1 for run in self.runs if run.outcome == outcome)

    def summary(self) -> str:
        lines = [
            f"chaos: {len(self.runs)} runs — {self.count(OK)} ok, "
            f"{self.count(RECOVERED)} recovered, {self.count(DEGRADED)} "
            f"degraded, {self.count(TYPED_ERROR)} typed errors, "
            f"{self.count(FAILED)} failed"
        ]
        for run in self.runs:
            if not run.passed:
                lines.append(
                    f"  FAILED run {run.index} (seed {run.seed}, {run.workload}, "
                    f"{run.backend}/{run.transport}): {run.error}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable sweep summary (``python -m repro chaos --json``)."""
        return {
            "passed": self.passed,
            "counts": {
                outcome: self.count(outcome)
                for outcome in (OK, RECOVERED, DEGRADED, TYPED_ERROR, FAILED)
            },
            "runs": [run.to_dict() for run in self.runs],
        }


# -- workloads ----------------------------------------------------------------


def _reference(nx: int, ny: int) -> np.ndarray:
    """Global field with a unique value per cell (bitwise comparisons)."""
    return np.arange(nx * ny, dtype=np.float32).reshape(ny, nx)


def _extract(reference: np.ndarray, box: Box) -> np.ndarray:
    ox, oy = box.offset
    h, w = box.np_shape()
    return reference[oy : oy + h, ox : ox + w]


def _exchange_worker(
    comm: Communicator, nx: int, ny: int, backend: str, transport: str,
    generations: int,
) -> bool:
    """Slab-to-tile redistribution, verified bitwise every generation."""
    rank = comm.rank
    own_box = slab_box(nx, ny, comm.size, rank)
    need_box = grid_boxes((nx, ny), grid_shape(comm.size, (nx, ny)))[rank]
    red = Redistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport=transport
    )
    red.setup(own=[own_box], need=need_box)
    reference = _reference(nx, ny)
    base_own = np.ascontiguousarray(_extract(reference, own_box))
    base_expect = _extract(reference, need_box)
    for generation in range(1, generations + 1):
        own = base_own * np.float32(generation)
        out = red.gather_need([own], fill=-1.0)
        expect = base_expect * np.float32(generation)
        if not np.array_equal(out, expect):
            raise ChaosVerificationError(
                f"rank {rank} generation {generation}: exchange output does "
                f"not match the reference (silent corruption)"
            )
    return True


def _resilient_exchange_worker(
    comm: Communicator, nx: int, ny: int, backend: str, transport: str,
    generations: int,
) -> tuple[int, bool]:
    """Crash-surviving slab-to-tile redistribution.

    Regenerates data for *every* current own box each generation (adopted
    boxes included), so a recovered run is verified bitwise against the
    no-fault reference.  Regions the recovery had to restore from an older
    checkpoint epoch (``stale_boxes``) are masked out of the comparison
    and reported as degradation instead.  Returns ``(recoveries,
    degraded)``.
    """
    rank = comm.rank
    own_box = slab_box(nx, ny, comm.size, rank)
    need_box = grid_boxes((nx, ny), grid_shape(comm.size, (nx, ny)))[rank]
    red = ResilientRedistributor(
        comm, ndims=2, dtype=np.float32, backend=backend, transport=transport
    )
    red.setup([own_box], need_box)
    reference = _reference(nx, ny)
    expect_base = _extract(reference, need_box)
    degraded = False
    for generation in range(1, generations + 1):
        scale = np.float32(generation)
        buffers = [
            np.ascontiguousarray(_extract(reference, box)) * scale
            for box in red.own_boxes
        ]
        out = red.gather_need(buffers, fill=-1.0)
        expect = expect_base * scale
        mask = np.ones(expect.shape, dtype=bool)
        if red.stale_boxes:
            degraded = True
            for box in red.stale_boxes:
                overlap = box.intersect(need_box)
                if overlap is None:
                    continue
                r0, c0 = overlap.np_starts_within(need_box)
                h, w = overlap.np_shape()
                mask[r0 : r0 + h, c0 : c0 + w] = False
        if not np.array_equal(out[mask], expect[mask]):
            raise ChaosVerificationError(
                f"rank {rank} generation {generation}: recovered exchange "
                f"output does not match the reference (silent corruption)"
            )
    return red.recoveries, degraded


def _pipeline_worker(comm: Communicator, config: PipelineConfig):
    return run_pipeline(comm, config)


def _pipeline_config(backend: str, frame_drop: str) -> PipelineConfig:
    return PipelineConfig(
        lbm=LbmConfig(nx=32, ny=16),
        m=2,
        n=2,
        steps=10,
        output_every=5,
        backend=backend,
        frame_drop=frame_drop,
        frame_deadline_s=0.5,
        reliability=CHAOS_POLICY,
    )


def _crash_pipeline_config(backend: str, frame_drop: str) -> PipelineConfig:
    # m=3 so a single simulation-rank death still leaves m' >= n.
    return PipelineConfig(
        lbm=LbmConfig(nx=32, ny=16),
        m=3,
        n=2,
        steps=10,
        output_every=5,
        backend=backend,
        frame_drop=frame_drop,
        frame_deadline_s=0.5,
        reliability=CHAOS_POLICY,
        on_rank_loss="shrink",
    )


def _crash_plan(plan_seed: int, nranks: int, ops: int, window: int) -> FaultPlan:
    """A single-crash schedule: one victim, one kill point, nothing else.

    ``window`` caps the kill point so it lands inside the workload's actual
    op count (the exchange performs far fewer transport ops than a full
    pipeline run); a crash point past the end would never fire.
    """
    meta = random.Random(plan_seed)
    return FaultPlan(
        seed=plan_seed,
        nranks=nranks,
        ops=ops,
        crash_rank=meta.randrange(nranks),
        crash_at_op=meta.randrange(3, max(4, min(ops, window))),
    )


# -- the sweep ----------------------------------------------------------------


def _classify_failure(exc: BaseException) -> tuple[str, str]:
    """Map an escaped exception to (outcome, description)."""
    original = exc.original if isinstance(exc, RankFailure) else exc
    head = str(original).splitlines()[0][:160] if str(original) else ""
    label = f"{type(original).__name__}: {head}"
    if isinstance(original, ChaosVerificationError):
        return FAILED, label
    if isinstance(exc, SpmdHangError) or isinstance(original, SpmdHangError):
        return FAILED, label
    if isinstance(original, MpiSimError):
        return TYPED_ERROR, label
    return FAILED, label


def run_chaos(
    seed: int = 0,
    runs: int = 50,
    ops: int = 200,
    nprocs: int = 4,
    log=None,
    crashes: bool = False,
) -> ChaosReport:
    """Sweep ``runs`` randomized fault schedules; see the module docstring.

    Run ``i`` uses plan seed ``seed + i`` and cycles through every
    engine × transport combination; every :data:`PIPELINE_EVERY`-th run
    drives the in-transit pipeline (alternating the ``skip`` and ``stale``
    frame-drop policies) instead of the plain redistribution.

    With ``crashes=True`` every plan is a seeded *single-crash* schedule
    (one victim rank, one kill point, no other faults) and the workloads
    run their crash-surviving variants — :class:`ResilientRedistributor`
    and the shrink-mode pipeline.  A run where the victim actually died
    must end recovered-bitwise-correct (:data:`RECOVERED`), degraded by
    policy (:data:`DEGRADED`), or with a typed error; a hang or silent
    corruption still fails the run.
    """
    if nprocs < 2:
        raise ValueError(f"chaos needs nprocs >= 2, got {nprocs}")
    report = ChaosReport()
    for index in range(runs):
        plan_seed = seed + index
        backend = BACKENDS[index % len(BACKENDS)]
        executor, transport = COMBOS[(index // len(BACKENDS)) % len(COMBOS)]
        if crashes or index % PIPELINE_EVERY == PIPELINE_EVERY - 1:
            # Crash recovery and the pipeline need the shared-memory
            # blackboard (buddy checkpoints); keep those on threads.
            if executor == "process":
                executor, transport = "thread", TRANSPORT_PACKED
        is_pipeline = index % PIPELINE_EVERY == PIPELINE_EVERY - 1
        if is_pipeline:
            config = (
                _crash_pipeline_config if crashes else _pipeline_config
            )(
                backend,
                "skip" if (index // PIPELINE_EVERY) % 2 == 0 else "stale",
            )
            world_size = config.m + config.n
        else:
            config = None
            world_size = nprocs
        # The pipeline tolerates frame loss by policy; crashes there are
        # still allowed (they surface typed or recovered), but drops are
        # the interesting stimulus.  The plain exchange gets the full
        # fault menu; crash mode narrows it to one scripted death.
        if crashes:
            window = 90 if is_pipeline else 20
            plan = _crash_plan(plan_seed, world_size, ops, window)
        else:
            plan = FaultPlan.random(plan_seed, nprocs, ops=ops)
        outcome, error, injected = OK, "", 0
        stats: dict = {}
        started = time.perf_counter()
        try:
            with fault_plan(plan, CHAOS_POLICY):
                try:
                    if is_pipeline:
                        results = run_spmd(
                            world_size,
                            _pipeline_worker,
                            config,
                            resilient=crashes,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                        )
                        outcome = _classify_pipeline(results)
                    elif crashes:
                        results = run_spmd(
                            nprocs,
                            _resilient_exchange_worker,
                            16,
                            8,
                            backend,
                            transport,
                            3,
                            resilient=True,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                        )
                        outcome = _classify_exchange(results)
                    else:
                        run_spmd(
                            nprocs,
                            _exchange_worker,
                            16,
                            8,
                            backend,
                            transport,
                            3,
                            deadlock_timeout=DEADLOCK_TIMEOUT_S,
                            executor=executor,
                        )
                finally:
                    injected = FAULTS.stats.total_injected()
                    stats = FAULTS.stats.snapshot()
        except (RankFailure, SpmdHangError, MpiSimError) as exc:
            outcome, error = _classify_failure(exc)
        except Exception as exc:  # noqa: BLE001 - bare exceptions fail the run
            outcome, error = FAILED, f"{type(exc).__name__}: {exc}"
        run = ChaosRun(
            index=index,
            seed=plan_seed,
            workload="pipeline" if is_pipeline else "redistribute",
            backend=backend,
            transport=transport,
            outcome=outcome,
            executor=executor,
            error=error,
            injected=injected,
            duration_s=time.perf_counter() - started,
            stats=stats,
        )
        report.runs.append(run)
        if log is not None:
            mark = "PASS" if run.passed else "FAIL"
            log(
                f"[{mark}] run {index:3d} seed {plan_seed} "
                f"{run.workload:<12} {backend:<9} {executor:<7} {transport:<8} "
                f"{outcome:<11} inj={injected:<3d} {run.duration_s:.2f}s"
                + (f"  {error}" if error else "")
            )
    return report


def _classify_exchange(results: list) -> str:
    """Outcome of a resilient exchange run (no exception escaped)."""
    crashed = any(isinstance(r, RankCrashError) for r in results)
    survivors = [r for r in results if not isinstance(r, RankCrashError)]
    if any(degraded for _, degraded in survivors):
        return DEGRADED
    if crashed or any(recoveries for recoveries, _ in survivors):
        return RECOVERED
    return OK


def _classify_pipeline(results: list) -> str:
    """Outcome of a pipeline run (no exception escaped)."""
    crashed = any(isinstance(r, RankCrashError) for r in results)
    root = next(
        r
        for r in results
        if isinstance(r, PipelineResult) and r.role == "analysis_root"
    )
    if root.frames_dropped or root.frames_stale:
        return DEGRADED
    if crashed or root.recoveries:
        return RECOVERED
    return OK
