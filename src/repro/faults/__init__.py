"""Fault injection and self-healing redistribution.

Deterministic chaos for the in-process fabric: a seeded
:class:`~repro.faults.plan.FaultPlan` describes what goes wrong (message
delay, drop, transient send/recv failure, payload corruption, rank crash,
round-entry failure), the :data:`~repro.faults.injector.FAULTS` layer
injects it at the transport's choke points, and a
:class:`~repro.faults.policy.ReliabilityPolicy` configures the recovery
machinery — transport retries with exponential backoff, checksum
verify-and-reretrieve, per-operation deadlines, engine round retries, and
the in-transit pipeline's frame-drop policy.

The chaos harness lives in :mod:`repro.faults.chaos` (imported lazily by
the ``python -m repro chaos`` CLI; it pulls in the whole runtime, so it is
deliberately not re-exported here).
"""

from .injector import (
    FAULTS,
    FaultLayer,
    FaultStats,
    clear_fault_plan,
    fault_plan,
    install_fault_plan,
)
from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .policy import CORRUPTION_RAISE, CORRUPTION_RERETRIEVE, ReliabilityPolicy

__all__ = [
    "CORRUPTION_RAISE",
    "CORRUPTION_RERETRIEVE",
    "FAULTS",
    "FAULT_KINDS",
    "FaultLayer",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "ReliabilityPolicy",
    "clear_fault_plan",
    "fault_plan",
    "install_fault_plan",
]
