"""The process-wide fault layer the transport consults (``FAULTS``).

``repro.mpisim.comm`` guards every injection point with a single attribute
check — ``if FAULTS.active:`` — exactly the ``TRACER.enabled`` /
``TRANSFER_COUNTERS.enabled`` discipline, so an uninstalled fault layer
costs one attribute load per operation on the hot path.

When a :class:`~repro.faults.plan.FaultPlan` is installed the layer:

* counts each rank's transport operations (the plan's op index);
* kills a rank with :class:`~repro.mpisim.errors.RankCrashError` at its
  scheduled op;
* stalls operations (message delay), discards outgoing messages (drop —
  releasing a zero-copy sender so only the *receiver* pays, with a typed
  per-op deadline timeout), and simulates transient send/recv failures
  which it heals in place with the installed
  :class:`~repro.faults.policy.ReliabilityPolicy`'s
  retry-with-exponential-backoff (raising
  :class:`~repro.mpisim.errors.RetriesExhaustedError` when the budget is
  blown);
* seals every staged NumPy payload with a CRC32 checksum at send time and
  verifies it at delivery; an injected corruption is healed by
  re-retrieving the sender's retained pristine payload (one simulated
  retransmission) or raised as
  :class:`~repro.mpisim.errors.CorruptionError`, per policy.

Every injected fault and recovery is counted in :class:`FaultStats` and —
when tracing is enabled — recorded as a ``fault.*`` span, so chaos runs
are fully visible in Perfetto traces and metrics summaries.

Import discipline: this module is imported by ``repro.mpisim.comm`` at
module level, so it must not import ``repro.mpisim`` at *its* module level
(the error types are imported lazily inside the raising functions).
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Iterator, Optional

import numpy as np

from ..obs.tracer import TRACER
from .plan import FaultPlan
from .policy import CORRUPTION_RERETRIEVE, ReliabilityPolicy

__all__ = [
    "FAULTS",
    "FaultLayer",
    "FaultStats",
    "clear_fault_plan",
    "fault_plan",
    "install_fault_plan",
]


def _errors():
    # Deferred: repro.mpisim.comm imports this module, so importing
    # repro.mpisim here at module level would be a cycle.  Injection only
    # happens at runtime, long after both packages are initialised.
    from ..mpisim import errors

    return errors


class FaultStats:
    """Thread-safe counters for injected faults and recoveries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def total_injected(self) -> int:
        snap = self.snapshot()
        return sum(
            n for name, n in snap.items()
            if name in ("delays", "drops", "transient_send", "transient_recv",
                        "corruptions", "round_faults", "crashes", "alloc_faults")
        )

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.snapshot().items()))
        return f"FaultStats({items})"


class FaultLayer:
    """Singleton consulted by the transport; see module docstring."""

    def __init__(self) -> None:
        #: The one-attribute hot-path guard.  True iff a plan is installed.
        self.active = False
        self.plan: Optional[FaultPlan] = None
        self.policy = ReliabilityPolicy()
        self.stats = FaultStats()
        # Per-rank transport op counters and drop counts.  Each rank is one
        # thread and only touches its own key, so plain dicts are safe.
        self._ops: dict[int, int] = {}
        self._drops: dict[int, int] = {}
        # Staging allocations keep a separate per-rank sequence so memory
        # chaos never shifts the op indices scripted transport faults target.
        self._allocs: dict[int, int] = {}
        #: Ranks this layer has killed with ``RankCrashError`` (read by
        #: ``SpmdHangError`` diagnostics to report them as crashed, not stuck).
        self._crashed: set[int] = set()
        #: rank -> human description of a retry currently in progress
        #: (read by ``SpmdHangError`` diagnostics).
        self.pending_retries: dict[int, str] = {}

    # -- lifecycle -----------------------------------------------------------

    def install(self, plan: FaultPlan, policy: Optional[ReliabilityPolicy] = None) -> None:
        """Install ``plan`` (resetting op counters and stats) and activate."""
        self.plan = plan
        self.policy = policy if policy is not None else ReliabilityPolicy()
        self.stats = FaultStats()
        self._ops = {}
        self._drops = {}
        self._allocs = {}
        self._crashed = set()
        self.pending_retries = {}
        self.active = True

    def clear(self) -> None:
        """Deactivate; keeps the last stats readable for post-mortems."""
        self.active = False
        self.plan = None
        self.pending_retries = {}

    def op_count(self, rank: int) -> int:
        return self._ops.get(rank, 0)

    def crashed_ranks(self) -> frozenset[int]:
        """Ranks this layer has killed (world ranks)."""
        return frozenset(self._crashed)

    def diagnostics(self) -> str:
        """Fault-injection state for hang reports: plan, ops, pending retries."""
        if not self.active or self.plan is None:
            return "no fault plan installed"
        ops = ", ".join(f"r{r}:{n}" for r, n in sorted(self._ops.items()))
        pending = "; ".join(
            f"rank {r} retrying {what}" for r, what in sorted(self.pending_retries.items())
        ) or "none"
        return (
            f"{self.plan.summary()}; ops=[{ops}]; pending retries: {pending}; "
            f"stats: {self.stats!r}"
        )

    # -- injection points ----------------------------------------------------

    def _next_op(self, rank: int) -> int:
        op = self._ops.get(rank, 0)
        self._ops[rank] = op + 1
        return op

    def _check_crash(self, rank: int, op: int) -> None:
        assert self.plan is not None
        if self.plan.crashes(rank, op):
            self.stats.incr("crashes")
            self._crashed.add(rank)
            if TRACER.enabled:
                with TRACER.span("fault.crash", rank=rank, op=op):
                    pass
            raise _errors().RankCrashError(
                f"rank {rank} crashed by fault plan at op {op} "
                f"({self.plan.summary()})"
            )

    def _delay(self, rank: int, op: int) -> None:
        assert self.plan is not None
        seconds = self.plan.delay_s(rank, op)
        if seconds > 0:
            self.stats.incr("delays")
            if TRACER.enabled:
                with TRACER.span("fault.delay", rank=rank, op=op, seconds=seconds):
                    time.sleep(seconds)
            else:
                time.sleep(seconds)

    def _transient(self, point: str, rank: int, op: int) -> None:
        """Simulate ``failures`` failed attempts healed by retry+backoff."""
        assert self.plan is not None
        failures = self.plan.transient_failures(point, rank, op)
        if not failures:
            return
        self.stats.incr(f"transient_{point}", failures)
        allowed = 1 + self.policy.max_retries
        if failures >= allowed:
            self.stats.incr("retries", allowed - 1)
            self.stats.incr("retries_exhausted")
            raise _errors().RetriesExhaustedError(
                f"rank {rank} {point} op {op}: {failures} consecutive transient "
                f"failures exceed the retry budget ({self.policy.max_retries})"
            )
        self.pending_retries[rank] = f"{point} op {op} ({failures} attempt(s))"
        try:
            for attempt in range(1, failures + 1):
                self.stats.incr("retries")
                backoff = self.policy.backoff_s(attempt)
                if TRACER.enabled:
                    with TRACER.span(
                        "fault.retry", rank=rank, point=point, op=op,
                        attempt=attempt, backoff_s=backoff,
                    ):
                        time.sleep(backoff)
                else:
                    time.sleep(backoff)
        finally:
            self.pending_retries.pop(rank, None)

    def on_send(self, rank: int, message: Any) -> bool:
        """Consult the plan before posting; returns False when dropped."""
        assert self.plan is not None
        op = self._next_op(rank)
        tag = getattr(message, "tag", None)
        self._check_crash(rank, op)
        self._delay(rank, op)
        self._transient("send", rank, op)
        if self.plan.drop(rank, op, tag, self._drops.get(rank, 0)):
            self._drops[rank] = self._drops.get(rank, 0) + 1
            self.stats.incr("drops")
            if TRACER.enabled:
                with TRACER.span("fault.drop", rank=rank, op=op, tag=tag):
                    pass
            # A dropped rendezvous lane must still release the sender: the
            # loss is the receiver's problem (per-op deadline), never a
            # sender-side hang.
            complete = getattr(message.payload, "complete", None)
            if callable(complete):
                complete()
            return False
        self._seal(rank, op, tag, message)
        return True

    def on_recv(self, rank: int) -> Optional[float]:
        """Consult the plan before a blocking receive; returns the per-op
        deadline (seconds) the fabric should honour, or ``None``."""
        assert self.plan is not None
        op = self._next_op(rank)
        self._check_crash(rank, op)
        self._delay(rank, op)
        self._transient("recv", rank, op)
        return self.policy.op_deadline_s

    def on_deliver(self, message: Any) -> None:
        """Verify a sealed payload; heal or raise on checksum mismatch."""
        checksum = getattr(message, "checksum", None)
        if checksum is None:
            return
        payload = message.payload
        if not isinstance(payload, np.ndarray):
            return
        if zlib.crc32(payload.tobytes()) == checksum:
            return
        self.stats.incr("corruption_detected")
        pristine = getattr(message, "pristine", None)
        if pristine is not None and self.policy.corruption == CORRUPTION_RERETRIEVE:
            # Simulated retransmission: the sender's retained payload is
            # intact, so verify-and-reretrieve heals the message.
            message.payload = pristine
            message.pristine = None
            self.stats.incr("reretrieves")
            if TRACER.enabled:
                with TRACER.span(
                    "fault.reretrieve", source=message.source, tag=message.tag
                ):
                    pass
            return
        raise _errors().CorruptionError(
            f"message from rank {message.source} tag {message.tag} failed its "
            f"CRC32 check and no retransmission is available "
            f"(policy.corruption={self.policy.corruption!r})"
        )

    def on_alloc(self, rank: int, nbytes: int) -> None:
        """Consult the plan before a staging allocation (memory pressure).

        A scheduled failure below the retry budget is healed in place with
        the policy's exponential backoff — modeling an allocator that
        succeeds once transient pressure drains.  Past the budget it
        escalates to a typed
        :class:`~repro.mpisim.errors.MemoryBudgetError`, the same error
        the ledger raises, so callers see one vocabulary for "the staging
        memory is not there".
        """
        assert self.plan is not None
        op = self._allocs.get(rank, 0)
        self._allocs[rank] = op + 1
        failures = self.plan.alloc_failures(rank, op)
        if not failures:
            return
        self.stats.incr("alloc_faults", failures)
        allowed = 1 + self.policy.max_retries
        if failures >= allowed:
            self.stats.incr("retries", allowed - 1)
            self.stats.incr("retries_exhausted")
            raise _errors().MemoryBudgetError(
                f"rank {rank} staging allocation {op} ({nbytes} bytes): "
                f"{failures} consecutive allocation failures exceed the "
                f"retry budget ({self.policy.max_retries})"
            )
        self.pending_retries[rank] = f"alloc op {op} ({failures} attempt(s))"
        try:
            for attempt in range(1, failures + 1):
                self.stats.incr("retries")
                backoff = self.policy.backoff_s(attempt)
                if TRACER.enabled:
                    with TRACER.span(
                        "fault.alloc", rank=rank, op=op,
                        nbytes=nbytes, attempt=attempt, backoff_s=backoff,
                    ):
                        time.sleep(backoff)
                else:
                    time.sleep(backoff)
        finally:
            self.pending_retries.pop(rank, None)

    def on_round_start(self, rank: int, round_index: int, attempt: int) -> None:
        """Engine hook: fail round entry ``attempt`` (0-based) if scheduled.

        Raised *before* any message of the round has been posted or
        consumed, so the engine may retry the round locally without
        disturbing collective matching.
        """
        assert self.plan is not None
        failures = self.plan.round_failures(rank, round_index)
        if attempt < failures:
            self.stats.incr("round_faults")
            if TRACER.enabled:
                with TRACER.span(
                    "fault.round", rank=rank, round=round_index, attempt=attempt
                ):
                    pass
            raise _errors().TransientFaultError(
                f"rank {rank} round {round_index}: injected entry failure "
                f"(attempt {attempt})"
            )

    # -- internals -----------------------------------------------------------

    def _seal(self, rank: int, op: int, tag: Optional[int], message: Any) -> None:
        """Checksum a staged ndarray payload; corrupt it if scheduled."""
        assert self.plan is not None
        payload = message.payload
        if not isinstance(payload, np.ndarray) or payload.nbytes == 0:
            return
        message.checksum = zlib.crc32(payload.tobytes())
        if self.plan.corrupt(rank, op, tag):
            self.stats.incr("corruptions")
            corrupted = payload.copy()
            flat = corrupted.reshape(-1).view(np.uint8)
            index = self.plan._rng("corruptbyte", rank, op).randrange(flat.size)
            flat[index] ^= 0xFF
            message.pristine = payload
            message.payload = corrupted
            if TRACER.enabled:
                with TRACER.span("fault.corrupt", rank=rank, op=op, tag=tag):
                    pass


#: Process-wide singleton every transport injection point consults.
FAULTS = FaultLayer()


def install_fault_plan(
    plan: FaultPlan, policy: Optional[ReliabilityPolicy] = None
) -> None:
    """Install ``plan`` on the process-wide fault layer (see ``FAULTS``)."""
    FAULTS.install(plan, policy)


def clear_fault_plan() -> None:
    """Remove the installed plan; the transport returns to zero-cost mode."""
    FAULTS.clear()


@contextmanager
def fault_plan(
    plan: FaultPlan, policy: Optional[ReliabilityPolicy] = None
) -> Iterator[FaultLayer]:
    """Run a block under ``plan``; prior state is restored on exit.

    Install/clear only while the fabric is quiescent (no exchange in
    flight): a message sealed under one plan must be delivered while the
    layer is still active for its checksum to be verified.
    """
    previous = (FAULTS.active, FAULTS.plan, FAULTS.policy)
    FAULTS.install(plan, policy)
    try:
        yield FAULTS
    finally:
        FAULTS.active, FAULTS.plan, FAULTS.policy = previous
