"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` answers one question at every transport/engine
injection point: *what goes wrong for operation ``op`` on rank ``rank``?*
Decisions are pure functions of ``(plan.seed, kind, rank, op)`` — each
query seeds its own private :class:`random.Random` from a stable hash — so
a plan injects the identical fault schedule no matter how the rank threads
interleave, and a chaos-run failure reproduces from its seed alone.

Two sources feed a decision:

* **probabilistic knobs** (``p_drop``, ``p_delay``, ...) — evaluated only
  while ``op < ops`` so every schedule has a bounded fault horizon and a
  faulty run still terminates;
* **scripted events** (:class:`FaultSpec`) — exact injections for tests
  and reproductions, matched on ``(kind, rank)`` plus an optional op index
  and optional message tag (tags let a test target e.g. one specific
  in-transit frame without counting ops).

This module must stay import-light (stdlib only): it is pulled in by the
transport hot path via ``repro.faults.injector`` and must not create an
import cycle with ``repro.mpisim``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional

#: Fault kinds (also the ``FaultSpec.kind`` vocabulary).
KIND_DELAY = "delay"
KIND_DROP = "drop"
KIND_SEND = "send"  # transient send failure
KIND_RECV = "recv"  # transient recv failure
KIND_CORRUPT = "corrupt"
KIND_ROUND = "round"  # exchange-round entry failure
KIND_CRASH = "crash"
KIND_ALLOC = "alloc"  # staging-allocation failure (memory pressure)

FAULT_KINDS = (
    KIND_DELAY, KIND_DROP, KIND_SEND, KIND_RECV, KIND_CORRUPT, KIND_ROUND, KIND_CRASH,
    KIND_ALLOC,
)


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    ``op`` is the per-rank operation index for transport kinds (``None``
    matches any op) and the *round index* for ``kind="round"``.  ``tag``
    narrows transport faults to messages with that tag (``None`` matches
    any).  ``count`` is how many consecutive attempts/occurrences fail:
    for ``send``/``recv``/``round`` it is the number of failing attempts
    before the operation succeeds (use a large value for a permanent
    fault); for ``drop`` it caps how many matching messages are dropped.
    """

    kind: str
    rank: int
    op: Optional[int] = None
    tag: Optional[int] = None
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; options: {FAULT_KINDS}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def matches(self, rank: int, op: Optional[int], tag: Optional[int]) -> bool:
        if rank != self.rank:
            return False
        if self.op is not None and op != self.op:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults for one SPMD execution.

    ``ops`` bounds the probabilistic fault horizon: operations past it see
    no randomized faults (scripted events still apply), so every plan
    eventually lets the run drain.  ``crash_rank``/``crash_at_op`` kill one
    rank with :class:`~repro.mpisim.errors.RankCrashError` the moment its
    op counter reaches the index.  Probabilities are per-operation.
    """

    seed: int
    nranks: int
    ops: int = 200
    p_delay: float = 0.0
    delay_max_s: float = 0.01
    p_drop: float = 0.0
    p_transient_send: float = 0.0
    p_transient_recv: float = 0.0
    p_corrupt: float = 0.0
    p_round: float = 0.0
    p_alloc: float = 0.0
    crash_rank: Optional[int] = None
    crash_at_op: Optional[int] = None
    events: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        for name in ("p_delay", "p_drop", "p_transient_send",
                     "p_transient_recv", "p_corrupt", "p_round", "p_alloc"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be a probability, got {value}")
        if (self.crash_rank is None) != (self.crash_at_op is None):
            raise ValueError("crash_rank and crash_at_op must be set together")
        object.__setattr__(self, "events", tuple(self.events))

    # -- deterministic draws -------------------------------------------------

    def _rng(self, kind: str, rank: int, op: int) -> random.Random:
        key = zlib.crc32(f"{self.seed}:{kind}:{rank}:{op}".encode())
        return random.Random((self.seed << 32) ^ key)

    def _scripted(self, kind: str, rank: int, op: Optional[int],
                  tag: Optional[int]) -> Optional[FaultSpec]:
        for spec in self.events:
            if spec.kind == kind and spec.matches(rank, op, tag):
                return spec
        return None

    # -- queries (one per injection point) -----------------------------------

    def delay_s(self, rank: int, op: int) -> float:
        """Seconds to stall this operation (0.0 = no delay)."""
        spec = self._scripted(KIND_DELAY, rank, op, None)
        if spec is not None:
            return spec.delay_s
        if self.p_delay and op < self.ops:
            rng = self._rng(KIND_DELAY, rank, op)
            if rng.random() < self.p_delay:
                return rng.uniform(0.0, self.delay_max_s)
        return 0.0

    def drop(self, rank: int, op: int, tag: Optional[int], seen_drops: int) -> bool:
        """Whether to silently discard this outgoing message."""
        spec = self._scripted(KIND_DROP, rank, op, tag)
        if spec is not None:
            return seen_drops < spec.count
        if self.p_drop and op < self.ops:
            return self._rng(KIND_DROP, rank, op).random() < self.p_drop
        return False

    def transient_failures(self, point: str, rank: int, op: int) -> int:
        """Failing attempts before a send/recv succeeds (``point`` in
        ``send``/``recv``)."""
        spec = self._scripted(point, rank, op, None)
        if spec is not None:
            return spec.count
        prob = self.p_transient_send if point == KIND_SEND else self.p_transient_recv
        if prob and op < self.ops:
            rng = self._rng(point, rank, op)
            if rng.random() < prob:
                return 1 + (1 if rng.random() < 0.25 else 0)
        return 0

    def corrupt(self, rank: int, op: int, tag: Optional[int]) -> bool:
        """Whether to flip bytes of this message's staged payload."""
        spec = self._scripted(KIND_CORRUPT, rank, op, tag)
        if spec is not None:
            return True
        if self.p_corrupt and op < self.ops:
            return self._rng(KIND_CORRUPT, rank, op).random() < self.p_corrupt
        return False

    def round_failures(self, rank: int, round_index: int) -> int:
        """Failing attempts before round ``round_index`` starts on ``rank``."""
        spec = self._scripted(KIND_ROUND, rank, round_index, None)
        if spec is not None:
            return spec.count
        if self.p_round and round_index < self.ops:
            rng = self._rng(KIND_ROUND, rank, round_index)
            if rng.random() < self.p_round:
                return 1 + (1 if rng.random() < 0.25 else 0)
        return 0

    def alloc_failures(self, rank: int, op: int) -> int:
        """Failing attempts before staging allocation ``op`` succeeds.

        ``op`` here is the rank's *allocation* counter, not its transport
        op counter — staging allocations keep their own sequence so adding
        memory chaos never perturbs the op indices existing scripted plans
        target.
        """
        spec = self._scripted(KIND_ALLOC, rank, op, None)
        if spec is not None:
            return spec.count
        if self.p_alloc and op < self.ops:
            rng = self._rng(KIND_ALLOC, rank, op)
            if rng.random() < self.p_alloc:
                return 1 + (1 if rng.random() < 0.25 else 0)
        return 0

    def crashes(self, rank: int, op: int) -> bool:
        """Whether ``rank`` dies at operation ``op`` (inclusive threshold)."""
        if self.crash_rank is not None and rank == self.crash_rank:
            assert self.crash_at_op is not None
            return op >= self.crash_at_op
        return bool(self._scripted(KIND_CRASH, rank, op, None))

    # -- construction / reporting --------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        nranks: int,
        ops: int = 200,
        allow_crash: bool = True,
        allow_drop: bool = True,
        allow_alloc: bool = False,
    ) -> "FaultPlan":
        """A randomized-but-reproducible plan for chaos runs.

        A meta-RNG seeded with ``seed`` picks which fault families are
        active and how aggressive each is; the same seed always yields the
        same plan, and the plan then makes the same per-op decisions.
        """
        meta = random.Random(seed)
        kwargs: dict = {}
        if meta.random() < 0.6:
            kwargs["p_delay"] = meta.uniform(0.005, 0.05)
            kwargs["delay_max_s"] = meta.uniform(0.001, 0.02)
        if meta.random() < 0.7:
            kwargs["p_transient_send"] = meta.uniform(0.005, 0.08)
        if meta.random() < 0.7:
            kwargs["p_transient_recv"] = meta.uniform(0.005, 0.08)
        if meta.random() < 0.5:
            kwargs["p_corrupt"] = meta.uniform(0.005, 0.06)
        if meta.random() < 0.4:
            kwargs["p_round"] = meta.uniform(0.01, 0.1)
        if allow_drop and meta.random() < 0.25:
            kwargs["p_drop"] = meta.uniform(0.002, 0.02)
        if allow_crash and meta.random() < 0.2:
            kwargs["crash_rank"] = meta.randrange(nranks)
            kwargs["crash_at_op"] = meta.randrange(1, max(2, ops))
        # Appended after every prior draw so plans generated without
        # ``allow_alloc`` stay bit-identical to their pre-memory-chaos
        # selves (same seed, same schedule).
        if allow_alloc and meta.random() < 0.6:
            kwargs["p_alloc"] = meta.uniform(0.01, 0.1)
        return cls(seed=seed, nranks=nranks, ops=ops, **kwargs)

    def summary(self) -> str:
        """One line naming the active fault families (for diagnostics)."""
        parts = [f"seed={self.seed}", f"ops={self.ops}"]
        for name in ("p_delay", "p_drop", "p_transient_send",
                     "p_transient_recv", "p_corrupt", "p_round", "p_alloc"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value:.3f}")
        if self.crash_rank is not None:
            parts.append(f"crash=rank{self.crash_rank}@op{self.crash_at_op}")
        if self.events:
            parts.append(f"events={len(self.events)}")
        return f"FaultPlan({', '.join(parts)})"
