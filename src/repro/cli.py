"""Command-line interface: ``python -m repro <artifact>``.

Each subcommand regenerates one paper artifact and prints it next to the
published numbers (the same harnesses `examples/reproduce_paper.py` and the
benchmark suite use).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence


def _cmd_e1(args: argparse.Namespace) -> int:
    from .bench import e1

    print(e1.report())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .bench import table2

    print(table2.report_model(network=args.network))
    if args.native:
        stack_dir = table2.prepare_native_stack(
            Path(tempfile.mkdtemp(prefix="ddr_cli_t2_"))
        )
        print()
        print(table2.report_native(stack_dir))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .bench import table3

    print(table3.report())
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from .bench import table4

    if args.fast:
        measured = table4.measure_compression(
            nx=162, ny=65, m=4, n=2, steps=600, output_every=100
        )
        print(table4.report(measured))
    else:
        _, measured, fit = table4.measure_two_scales()
        print(table4.report(measured, fit))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .bench import fig3

    print(fig3.report())
    return 0


def _cmd_fig45(args: argparse.Namespace) -> int:
    from .bench import fig45

    print(fig45.report())
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .io.assignment import StackGeometry
    from .netmodel import COOLEY, tornado

    stack = StackGeometry(width=1024, height=512, n_images=512, bytes_per_pixel=4)
    print("headline-speedup tornado (+-30% per fitted model constant):")
    for bar in tornado(cluster=COOLEY, stack=stack):
        print(
            f"  {bar.parameter:>24}: {bar.low_speedup:6.1f}x .. "
            f"{bar.high_speedup:6.1f}x (swing {bar.swing:5.1f})"
        )
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from .core import Box, compute_global_plan, global_schedules
    from .netmodel import COOLEY, engine_cost

    nprocs = args.nprocs
    side = args.side
    if side % nprocs != 0:
        print(f"error: --side {side} must be a multiple of --nprocs {nprocs}",
              file=sys.stderr)
        return 2
    rows = side // nprocs

    def ring(rank):
        own = [Box((0, rank * rows), (side, rows))]
        need = Box((0, ((rank + 1) % nprocs) * rows), (side, rows))
        return own, need

    def transpose(rank):
        own = [Box((0, rank * rows), (side, rows))]
        need = Box((rank * rows, 0), (rows, side))
        return own, need

    patterns = {"sparse_ring": ring, "dense_transpose": transpose}
    print(
        f"exchange-engine cost model ({nprocs} ranks, {side}x{side} float32, "
        f"cluster {COOLEY.name}):"
    )
    for name, layout in patterns.items():
        plan = compute_global_plan(
            [layout(r)[0] for r in range(nprocs)],
            [layout(r)[1] for r in range(nprocs)],
            element_size=4,
        )
        sched = global_schedules(plan)[0]
        print(f"\n{name}: {sched.nrounds} round(s), "
              f"max partners/round {sched.max_partners}")
        for backend in ("alltoallw", "p2p", "auto", "bounded"):
            cost = engine_cost(COOLEY, plan, backend)
            detail = ""
            if backend == "auto":
                detail = f"  rounds -> {', '.join(cost.round_engines)}"
            print(
                f"  {backend:>9}: {cost.total_s * 1e6:9.1f} us  "
                f"(alpha {cost.alpha_s * 1e6:7.1f}, msgs {cost.message_s * 1e6:7.1f}, "
                f"xfer {cost.transfer_s * 1e6:7.1f}){detail}"
            )
    return 0


def _trace_intransit(args: argparse.Namespace) -> None:
    """Run a small in-transit pipeline (M sim + N analysis ranks)."""
    from .intransit import PipelineConfig, run_pipeline
    from .lbm import LbmConfig
    from .mpisim.executor import run_spmd

    config = PipelineConfig(
        lbm=LbmConfig(nx=args.nx, ny=args.ny),
        m=args.m,
        n=args.n,
        steps=args.steps,
        output_every=args.output_every,
        backend=args.backend,
    )
    run_spmd(
        config.m + config.n,
        lambda comm: run_pipeline(comm, config),
        executor=args.executor,
    )


def _trace_redistribute(args: argparse.Namespace) -> None:
    """Run a bare slab->transpose Redistributor loop on ``n`` ranks."""
    import numpy as np

    from .core import Box, Redistributor
    from .mpisim.executor import run_spmd

    nprocs, side, frames = args.n, args.nx, max(1, args.steps // args.output_every)
    if side % nprocs:
        raise SystemExit(f"--nx {side} must be a multiple of --n {nprocs}")
    rows = side // nprocs

    def fn(comm):
        rank = comm.rank
        red = Redistributor(comm, ndims=2, dtype=np.float32, backend=args.backend)
        red.setup(
            own=[Box((0, rank * rows), (side, rows))],
            need=Box((rank * rows, 0), (rows, side)),
        )
        data = np.full((rows, side), rank, dtype=np.float32)
        out = np.empty((rows, side), dtype=np.float32)
        for _ in range(frames):
            red.exchange([data], out)
        return True

    run_spmd(nprocs, fn, executor=args.executor)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry, tracing, write_chrome_trace

    demos = {"intransit": _trace_intransit, "redistribute": _trace_redistribute}
    with tracing() as tracer:
        demos[args.demo](args)
    records = tracer.records()

    out = Path(args.out)
    write_chrome_trace(records, out)

    registry = MetricsRegistry()
    registry.ingest(records)
    print(registry.summary(per_rank=args.per_rank))
    ranks = sorted({r.rank for r in records if r.rank is not None})
    print()
    print(
        f"captured {len(records)} spans across {len(ranks)} ranks -> {out}\n"
        f"view it at https://ui.perfetto.dev (or chrome://tracing): "
        f"one process per rank, spans nest as flame graphs"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    if args.edge and (args.crashes or args.resizes or args.memory):
        print("error: --edge is mutually exclusive with "
              "--crashes/--resizes/--memory",
              file=sys.stderr)
        return 2
    if args.edge:
        from .faults.edgechaos import run_edge_chaos

        report = run_edge_chaos(
            seed=args.seed,
            runs=args.runs,
            clients=args.clients,
            log=None if args.quiet else print,
        )
    else:
        from .faults.chaos import run_chaos

        report = run_chaos(
            seed=args.seed,
            runs=args.runs,
            ops=args.ops,
            nprocs=args.nprocs,
            log=None if args.quiet else print,
            crashes=args.crashes,
            resizes=args.resizes,
            memory=args.memory,
        )
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote machine-readable report -> {args.json}")
    return 0 if report.passed else 1


def _cmd_autoscale(args: argparse.Namespace) -> int:
    from .autoscale import autoscale_demo

    print(
        autoscale_demo(
            side=args.side,
            epochs=args.epochs,
            start_ranks=args.start_ranks,
            max_ranks=args.max_ranks,
            executor=args.executor,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading
    import time
    import urllib.request

    from .serve import (
        EdgeLimits,
        FrameHub,
        LbmSource,
        OverloadController,
        SloPolicy,
        StreamEdge,
        SyntheticSource,
        run_viewers,
    )

    if args.source == "lbm":
        source = LbmSource(args.nx, args.ny, m=args.m,
                           steps_per_frame=args.steps_per_frame)
    else:
        source = SyntheticSource(args.nx, args.ny, m=args.m)
    controller = None
    if args.degrade == "ladder":
        policy = (
            SloPolicy() if args.slo_ms is None
            else SloPolicy(publish_slo_s=args.slo_ms / 1000.0)
        )
        controller = OverloadController(policy)
    hub = FrameHub(args.nx, args.ny, m=args.m, quality=args.quality,
                   backend=args.backend, max_viewers=args.max_viewers,
                   overload=controller)
    limits = (
        EdgeLimits() if args.max_conns is None
        else EdgeLimits(max_conns=args.max_conns)
    )
    edge = StreamEdge(hub, host=args.host, port=args.port, limits=limits)
    edge.serve_in_thread()
    period = 1.0 / args.fps if args.fps > 0 else 0.0
    final_frame = args.frames - 1

    if args.smoke_viewers:
        holder: dict = {}

        def attach() -> None:
            holder["reports"] = run_viewers(
                edge.port, args.smoke_viewers, final_frame
            )

        thread = threading.Thread(target=attach, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30.0
        while (hub.viewer_count() < args.smoke_viewers
               and time.monotonic() < deadline):
            time.sleep(0.01)
        connected = hub.viewer_count()
        for index, slabs in source.frames(args.frames):
            # force= guarantees the final frame beats any fps-rung stride.
            hub.publish(index, slabs, force=index == final_frame)
            if period:
                time.sleep(period)
        thread.join(timeout=90.0)
        reports = holder.get("reports", [])
        failures = [
            r for r in reports if r.error or r.last_frame != final_frame
        ]
        for report in failures[:10]:
            print(
                f"FAIL viewer {report.viewer} ({report.transport} "
                f"?{report.query}): last_frame={report.last_frame} "
                f"{report.error}",
                file=sys.stderr,
            )
        with urllib.request.urlopen(
            f"http://127.0.0.1:{edge.port}/healthz", timeout=10.0
        ) as response:
            healthy = (
                response.status == 200 and response.read().strip() == b"ok"
            )
        shed = int(hub.metrics.counters.get("serve.viewers_shed", 0))
        stats = hub.stats()
        cache = stats["mapping_cache"]
        print(
            f"serve smoke: {len(reports) - len(failures)}/{len(reports)} "
            f"viewers saw frame {final_frame} "
            f"({connected} connected before publish)"
        )
        print(
            f"  layouts cached {cache['entries']}, mapping-cache hit rate "
            f"{cache['hit_rate']:.3f}, evictions {cache['evictions']}, "
            f"pool bytes {cache['pool_bytes']}"
        )
        print(
            f"  healthz {'ok' if healthy else 'NOT ok'}, viewers shed "
            f"{shed}, degrade "
            f"{stats['overload']['level_name'] if stats['overload'] else 'off'}"
        )
        if not healthy:
            print("FAIL: /healthz did not answer ok", file=sys.stderr)
        if shed:
            print(f"FAIL: {shed} viewers were shed during an unloaded smoke",
                  file=sys.stderr)
        edge.shutdown()
        hub.close()
        return 0 if reports and not failures and healthy and not shed else 1

    print(f"serving on http://{args.host}:{edge.port}/  (ctrl-C to stop)")
    try:
        for index, slabs in source.frames(args.frames):
            hub.publish(index, slabs, force=index == final_frame)
            if period:
                time.sleep(period)
    except KeyboardInterrupt:
        pass
    finally:
        edge.shutdown()
        hub.close()
    stats = hub.stats()
    print(
        f"published {stats['frames_published']} frames to "
        f"{stats['counters'].get('serve.viewers_connected', 0)} viewer(s)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'Automated Dynamic Data "
        "Redistribution' (IPPS 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("e1", help="Table I / Figure 1: the E1 example").set_defaults(
        fn=_cmd_e1
    )

    p2 = sub.add_parser("table2", help="Table II: TIFF load time")
    p2.add_argument("--network", choices=("analytic", "des"), default="analytic")
    p2.add_argument("--native", action="store_true",
                    help="also execute the native-scale loaders")
    p2.set_defaults(fn=_cmd_table2)

    sub.add_parser(
        "table3", help="Table III: Alltoallw scheduling (exact)"
    ).set_defaults(fn=_cmd_table3)

    p4 = sub.add_parser("table4", help="Table IV: raw vs JPEG output size")
    p4.add_argument("--fast", action="store_true", help="single small run")
    p4.set_defaults(fn=_cmd_table4)

    sub.add_parser("fig3", help="Figure 3: strong scaling").set_defaults(fn=_cmd_fig3)
    sub.add_parser(
        "fig45", help="Figures 4-5: M-to-N streaming layout"
    ).set_defaults(fn=_cmd_fig45)
    sub.add_parser(
        "sensitivity", help="model-calibration tornado (beyond the paper)"
    ).set_defaults(fn=_cmd_sensitivity)

    pe = sub.add_parser(
        "engines", help="per-engine exchange cost + auto-selection choices"
    )
    pe.add_argument("--nprocs", type=int, default=8)
    pe.add_argument("--side", type=int, default=256,
                    help="square field edge length (default 256)")
    pe.set_defaults(fn=_cmd_engines)

    pt = sub.add_parser(
        "trace",
        help="capture a Chrome/Perfetto trace of a demo workload",
        description="Run a demo under the tracer and export a Chrome "
        "trace-event JSON (one pid per rank) plus a span summary.",
    )
    pt.add_argument("demo", choices=("intransit", "redistribute"),
                    help="workload to trace")
    pt.add_argument("--out", default="trace.json", help="output JSON path")
    pt.add_argument("--backend", choices=("alltoallw", "p2p", "auto", "bounded"),
                    default="auto", help="exchange engine (default auto)")
    pt.add_argument("--m", type=int, default=4, help="simulation ranks (intransit)")
    pt.add_argument("--n", type=int, default=2,
                    help="analysis ranks (intransit) / ranks (redistribute)")
    pt.add_argument("--nx", type=int, default=64, help="field width")
    pt.add_argument("--ny", type=int, default=32, help="field height (intransit)")
    pt.add_argument("--steps", type=int, default=20, help="simulation steps")
    pt.add_argument("--output-every", type=int, default=10,
                    help="stream cadence in steps (intransit)")
    pt.add_argument("--per-rank", action="store_true",
                    help="print the per-rank histogram breakdown")
    pt.add_argument("--executor", choices=("thread", "process"), default=None,
                    help="rank executor (default: DDR_EXECUTOR env, else thread); "
                    "process forks one OS process per rank and merges the "
                    "per-process spans into one trace")
    pt.set_defaults(fn=_cmd_trace)

    pc = sub.add_parser(
        "chaos",
        help="randomized fault-injection sweep (self-healing gate)",
        description="Run seeded random fault schedules against every "
        "engine x transport combination (plus in-transit pipeline runs) "
        "and require bitwise-correct output or a clean typed error; hangs, "
        "bare exceptions, and silent corruption fail.  Exit 0 iff all "
        "runs pass.",
    )
    pc.add_argument("--seed", type=int, default=0, help="base plan seed")
    pc.add_argument("--runs", type=int, default=50,
                    help="number of randomized schedules (default 50)")
    pc.add_argument("--ops", type=int, default=200,
                    help="fault-injection horizon in transport ops per rank")
    pc.add_argument("--nprocs", type=int, default=4,
                    help="ranks per run (default 4)")
    pc.add_argument("--crashes", action="store_true",
                    help="single-crash mode: kill one rank per run and "
                    "require ULFM-style shrink/recover (resilient workloads)")
    pc.add_argument("--resizes", action="store_true",
                    help="resize mode: seeded mid-epoch grow/shrink "
                    "schedules (rank spawn + retire) under self-healing "
                    "faults; requires bitwise-correct output or a typed "
                    "error")
    pc.add_argument("--memory", action="store_true",
                    help="memory-pressure mode: run every schedule under a "
                    "staging budget shrinking from the workload's measured "
                    "peak, with seeded allocation faults; requires "
                    "bitwise-correct output (bounded/auto lowering), "
                    "degraded-by-policy frames, or a typed "
                    "MemoryBudgetError — never an OOM kill or hang")
    pc.add_argument("--edge", action="store_true",
                    help="edge mode: storm a live serving edge with seeded "
                    "misbehaving clients (slow-loris, garbage, WS "
                    "violations, half-closed sockets, connect floods, "
                    "never-reading consumers); requires OK / "
                    "degraded-by-policy / typed-error outcomes")
    pc.add_argument("--clients", type=int, default=5,
                    help="misbehaving clients per edge storm (default 5)")
    pc.add_argument("--json", metavar="PATH", default=None,
                    help="write the machine-readable report to PATH")
    pc.add_argument("--quiet", action="store_true",
                    help="suppress the per-run log lines")
    pc.set_defaults(fn=_cmd_chaos)

    pa = sub.add_parser(
        "autoscale",
        help="metrics-driven elastic resize demo (grow + shrink, live data)",
        description="Drive ResilientRedistributor.resize from an "
        "Autoscaler watching MetricsRegistry signals: a synthetic demand "
        "curve pushes queue depth over the grow watermark, the world "
        "spawns ranks one step at a time, then drains back down, with "
        "every epoch's redistribution checked bitwise.",
    )
    pa.add_argument("--side", type=int, default=96,
                    help="square field edge length (default 96)")
    pa.add_argument("--epochs", type=int, default=14,
                    help="exchange epochs to run (default 14)")
    pa.add_argument("--start-ranks", type=int, default=2,
                    help="initial world size (default 2)")
    pa.add_argument("--max-ranks", type=int, default=5,
                    help="autoscaler ceiling; spawn slots are reserved up "
                    "to this size (default 5)")
    pa.add_argument("--executor", choices=("thread", "process"), default=None,
                    help="rank executor (default: DDR_EXECUTOR env, else "
                    "thread)")
    pa.set_defaults(fn=_cmd_autoscale)

    ps = sub.add_parser(
        "serve",
        help="many-viewer streaming hub (HTTP/WebSocket MJPEG edge)",
        description="Run a frame producer through the serving hub and "
        "expose it over HTTP: / (browser page), /mjpeg (multipart "
        "stream), /ws (WebSocket), /frame, /stats.  Every route accepts "
        "x/y/w/h/mip/parts query parameters; each distinct layout gets "
        "its own DDR mapping from a bounded LRU cache.  --smoke-viewers "
        "N runs N synthetic WS+HTTP clients against the edge and exits "
        "nonzero unless every one of them saw the final frame.",
    )
    ps.add_argument("--nx", type=int, default=128, help="field width")
    ps.add_argument("--ny", type=int, default=64, help="field height")
    ps.add_argument("--m", type=int, default=4,
                    help="producer slab count (default 4)")
    ps.add_argument("--frames", type=int, default=600,
                    help="frames to publish before exiting (default 600)")
    ps.add_argument("--fps", type=float, default=20.0,
                    help="publish rate; 0 publishes as fast as possible")
    ps.add_argument("--source", choices=("lbm", "synthetic"), default="lbm",
                    help="frame producer (default lbm vorticity)")
    ps.add_argument("--steps-per-frame", type=int, default=10,
                    help="LBM steps between frames (default 10)")
    ps.add_argument("--quality", type=int, default=80,
                    help="JPEG quality (default 80)")
    ps.add_argument("--backend", choices=("alltoallw", "p2p", "auto", "bounded"),
                    default=None, help="exchange engine (default auto)")
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8737,
                    help="TCP port; 0 picks a free one (default 8737)")
    ps.add_argument("--smoke-viewers", type=int, default=0, metavar="N",
                    help="run N synthetic viewers and gate on delivery, "
                    "/healthz answering ok, and zero shed viewers")
    ps.add_argument("--max-viewers", type=int, default=None,
                    help="hub-wide viewer admission cap (503 + Retry-After "
                    "beyond it; default unlimited)")
    ps.add_argument("--max-conns", type=int, default=None,
                    help="concurrent TCP connection cap at the edge "
                    "(503 + Retry-After beyond it; default 256)")
    ps.add_argument("--slo-ms", type=float, default=None,
                    help="publish-latency SLO in milliseconds for the "
                    "degradation ladder (default 250)")
    ps.add_argument("--degrade", choices=("off", "ladder"), default="ladder",
                    help="overload response: 'ladder' walks quality->mip->"
                    "fps->shed with hysteresis, 'off' disables the "
                    "controller (default ladder)")
    ps.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
